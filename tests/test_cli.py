"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine import EngineConfig
from repro.relational.csvio import write_csv
from repro.relational.table import Table
from repro.sketches.serialization import load_sketch


@pytest.fixture()
def csv_pair(tmp_path, rng):
    """A correlated base/candidate CSV pair on disk."""
    keys = [f"k{i:04d}" for i in range(800)]
    x = rng.normal(size=800)
    y = x + 0.3 * rng.normal(size=800)
    base = Table.from_dict({"key": keys, "target": y.tolist()}, name="base")
    cand = Table.from_dict({"key": keys, "feature": x.tolist()}, name="cand")
    base_path = tmp_path / "base.csv"
    cand_path = tmp_path / "cand.csv"
    write_csv(base, base_path)
    write_csv(cand, cand_path)
    return base_path, cand_path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sketch", "in.csv", "--key", "k", "--value", "v", "-o", "out.json"]
        )
        assert args.command == "sketch"
        # Engine flags default to None: unset flags inherit from the engine
        # config (file or library default) instead of clobbering it.
        assert args.method is None
        assert args.engine_config is None

    def test_config_subcommand_registered(self):
        args = build_parser().parse_args(["config", "--capacity", "64"])
        assert args.command == "config"
        assert args.capacity == 64

    def test_missing_subcommand_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSketchCommand:
    def test_agg_defaults_from_engine_config(self, tmp_path, capsys):
        """Without --agg, the config's per-type aggregate applies (MODE for
        strings), instead of a hard-wired AVG."""
        table = Table.from_dict(
            {"key": ["a", "a", "b", "c"], "label": ["x", "x", "y", "z"]}, name="t"
        )
        csv_path = tmp_path / "t.csv"
        write_csv(table, csv_path)
        output = tmp_path / "t.sketch.json"
        assert main(
            ["sketch", str(csv_path), "--key", "key", "--value", "label",
             "--side", "candidate", "-o", str(output)]
        ) == 0
        from repro.sketches.serialization import load_sketch as _load

        assert _load(output).aggregate == "mode"

    def test_builds_and_saves_sketch(self, csv_pair, tmp_path, capsys):
        base_path, _ = csv_pair
        output = tmp_path / "base.sketch.json"
        code = main(
            [
                "sketch", str(base_path),
                "--key", "key", "--value", "target",
                "--side", "base", "--capacity", "128",
                "-o", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "128 tuples" in capsys.readouterr().out


class TestEstimateCommand:
    def test_estimate_from_sketch_files(self, csv_pair, tmp_path, capsys):
        base_path, cand_path = csv_pair
        base_sketch_path = tmp_path / "base.sketch.json"
        cand_sketch_path = tmp_path / "cand.sketch.json"
        assert main(
            ["sketch", str(base_path), "--key", "key", "--value", "target",
             "--side", "base", "--capacity", "256", "-o", str(base_sketch_path)]
        ) == 0
        assert main(
            ["sketch", str(cand_path), "--key", "key", "--value", "feature",
             "--side", "candidate", "--capacity", "256", "-o", str(cand_sketch_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["estimate", "--base-sketch", str(base_sketch_path),
             "--candidate-sketch", str(cand_sketch_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MI estimate:" in out
        mi_value = float(out.split("MI estimate:")[1].split("nats")[0])
        assert mi_value > 0.3  # strongly dependent pair

    def test_estimate_directly_from_csvs(self, csv_pair, capsys):
        base_path, cand_path = csv_pair
        code = main(
            [
                "estimate",
                "--base-csv", str(base_path), "--base-key", "key", "--base-value", "target",
                "--candidate-csv", str(cand_path), "--candidate-key", "key",
                "--candidate-value", "feature", "--capacity", "256",
            ]
        )
        assert code == 0
        assert "MI estimate:" in capsys.readouterr().out

    def test_missing_options_reported_as_error(self, capsys):
        code = main(["estimate", "--base-csv", "only-this.csv"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestConfigCommand:
    def test_prints_resolved_config_json(self, capsys):
        assert main(["config", "--capacity", "512", "--seed", "9"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["capacity"] == 512
        assert document["seed"] == 9
        # The CLI's baseline keeps its historical join-size floor of 16.
        assert document["min_join_size"] == 16
        assert EngineConfig.from_dict(document) == EngineConfig(
            capacity=512, seed=9, min_join_size=16
        )

    def test_engine_config_file_round_trip(self, csv_pair, tmp_path, capsys):
        """`repro config` output feeds back through --engine-config."""
        base_path, _ = csv_pair
        assert main(["config", "--capacity", "128", "--seed", "4"]) == 0
        config_path = tmp_path / "engine.json"
        config_path.write_text(capsys.readouterr().out, encoding="utf-8")
        output = tmp_path / "base.sketch.json"
        assert main(
            ["sketch", str(base_path), "--key", "key", "--value", "target",
             "--side", "base", "--engine-config", str(config_path),
             "-o", str(output)]
        ) == 0
        sketch = load_sketch(output)
        assert sketch.capacity == 128
        assert sketch.seed == 4

    def test_flags_override_engine_config_file(self, tmp_path, capsys):
        config_path = tmp_path / "engine.json"
        config_path.write_text(
            json.dumps(EngineConfig(capacity=128, seed=4).to_dict()), encoding="utf-8"
        )
        assert main(
            ["config", "--engine-config", str(config_path), "--capacity", "2048"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["capacity"] == 2048  # flag wins
        assert document["seed"] == 4  # file survives

    def test_estimate_honours_config_file_min_join_size(self, csv_pair, tmp_path, capsys):
        """A strict min_join_size in the config file is not clobbered by the
        CLI's historical default of 16."""
        base_path, cand_path = csv_pair
        config_path = tmp_path / "engine.json"
        config_path.write_text(
            json.dumps(EngineConfig(capacity=256, min_join_size=100_000).to_dict()),
            encoding="utf-8",
        )
        code = main(
            [
                "estimate", "--engine-config", str(config_path),
                "--base-csv", str(base_path), "--base-key", "key", "--base-value", "target",
                "--candidate-csv", str(cand_path), "--candidate-key", "key",
                "--candidate-value", "feature",
            ]
        )
        assert code == 2  # refused: join smaller than the config's threshold
        assert "samples" in capsys.readouterr().err
        # Without a config file the historical floor of 16 applies (a sketch
        # join this size passes it).
        # An explicit flag still wins over the file.
        code = main(
            [
                "estimate", "--engine-config", str(config_path), "--min-join-size", "16",
                "--base-csv", str(base_path), "--base-key", "key", "--base-value", "target",
                "--candidate-csv", str(cand_path), "--candidate-key", "key",
                "--candidate-value", "feature",
            ]
        )
        assert code == 0

    def test_malformed_engine_config_reported_as_error(self, tmp_path, capsys):
        config_path = tmp_path / "engine.json"
        config_path.write_text('{"capacity": 64, "bogus_key": 1}', encoding="utf-8")
        code = main(["config", "--engine-config", str(config_path)])
        assert code == 2
        assert "bogus_key" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(["experiment", "ablation_aggregation", "--scale", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation_aggregation" in out
        assert "AVG" in out

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


@pytest.fixture()
def lake_csvs(tmp_path, rng):
    """Three small candidate tables on disk."""
    keys = [f"k{i:03d}" for i in range(100)]
    paths = []
    for position in range(3):
        table = Table.from_dict(
            {
                "key": [keys[i] for i in rng.integers(0, 100, size=150)],
                "a": rng.normal(size=150).tolist(),
                "b": rng.normal(size=150).tolist(),
            },
            name=f"lake{position}",
        )
        path = tmp_path / f"lake{position}.csv"
        write_csv(table, path)
        paths.append(path)
    return paths


class TestIndexCommand:
    def test_build_writes_columnar_index(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "lake.index"
        code = main(
            [
                "index",
                "build",
                *map(str, lake_csvs),
                "--key",
                "key",
                "--capacity",
                "64",
                "--workers",
                "2",
                "--shards",
                "4",
                "-o",
                str(out_dir),
            ]
        )
        assert code == 0
        assert "indexed 6 candidates" in capsys.readouterr().out
        assert (out_dir / "index.json").exists()
        assert (out_dir / "sketches.npz").exists()
        from repro.discovery import load_index

        index = load_index(out_dir)
        assert len(index) == 6
        assert index.config.capacity == 64
        assert index.config.build_workers == 2
        assert index.config.build_shards == 4

    def test_add_grows_an_existing_index(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "lake.index"
        assert (
            main(
                [
                    "index",
                    "build",
                    str(lake_csvs[0]),
                    str(lake_csvs[1]),
                    "--key",
                    "key",
                    "-o",
                    str(out_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["index", "add", str(lake_csvs[2]), "--index", str(out_dir), "--key", "key"]
        )
        assert code == 0
        assert "added 2 candidates" in capsys.readouterr().out
        from repro.discovery import load_index

        assert len(load_index(out_dir)) == 6

    def test_values_flag_restricts_columns(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "lake.index"
        code = main(
            [
                "index",
                "build",
                str(lake_csvs[0]),
                "--key",
                "key",
                "--values",
                "a",
                "-o",
                str(out_dir),
            ]
        )
        assert code == 0
        assert "indexed 1 candidates" in capsys.readouterr().out

    def test_info_reports_summary_json(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "lake.index"
        main(
            ["index", "build", *map(str, lake_csvs), "--key", "key", "-o", str(out_dir)]
        )
        capsys.readouterr()
        code = main(["index", "info", str(out_dir)])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["candidates"] == 6
        assert summary["tables"] == {"lake0": 2, "lake1": 2, "lake2": 2}
        assert summary["engine_config"]["method"] == "TUPSK"

    def test_info_reports_postings_summary(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "lake.index"
        main(
            ["index", "build", *map(str, lake_csvs), "--key", "key", "-o", str(out_dir)]
        )
        capsys.readouterr()
        assert main(["index", "info", str(out_dir)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["postings"]["present"] is True
        assert summary["postings"]["candidates"] == 6
        assert summary["postings"]["key_buckets"] > 0
        assert summary["postings"]["avg_postings_per_key"] > 0

    def test_info_degrades_gracefully_without_sidecar(
        self, lake_csvs, tmp_path, capsys
    ):
        """Pre-postings directories still summarize; the sidecar section
        just reports absence."""
        out_dir = tmp_path / "lake.index"
        main(
            ["index", "build", *map(str, lake_csvs), "--key", "key", "-o", str(out_dir)]
        )
        (out_dir / "postings.npz").unlink()
        capsys.readouterr()
        assert main(["index", "info", str(out_dir)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["candidates"] == 6
        assert summary["postings"] == {"present": False}

    def test_missing_key_column_reported_as_error(self, lake_csvs, tmp_path, capsys):
        code = main(
            [
                "index",
                "build",
                str(lake_csvs[0]),
                "--key",
                "nope",
                "-o",
                str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "nope" in capsys.readouterr().err


@pytest.fixture()
def built_index(lake_csvs, tmp_path):
    """A small index directory built through the CLI itself."""
    out_dir = tmp_path / "lake.index"
    assert (
        main(
            [
                "index", "build", *map(str, lake_csvs),
                "--key", "key", "--capacity", "64", "-o", str(out_dir),
            ]
        )
        == 0
    )
    return out_dir


@pytest.fixture()
def base_csv(tmp_path, rng):
    keys = [f"k{i:03d}" for i in range(100)]
    table = Table.from_dict(
        {"key": keys, "target": rng.normal(size=100).tolist()}, name="base"
    )
    path = tmp_path / "base.csv"
    write_csv(table, path)
    return path


class TestIndexErrorHygiene:
    """Pointing index subcommands at a bad directory must not traceback."""

    def test_info_on_missing_directory(self, tmp_path, capsys):
        code = main(["index", "info", str(tmp_path / "does-not-exist")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no index.json" in err
        assert len(err.strip().splitlines()) == 1  # one friendly line, no traceback

    def test_query_on_missing_directory(self, base_csv, tmp_path, capsys):
        code = main(
            [
                "index", "query", str(tmp_path / "does-not-exist"),
                "--csv", str(base_csv), "--key", "key", "--target", "target",
            ]
        )
        assert code == 2
        assert "no index.json" in capsys.readouterr().err

    def test_info_on_corrupt_store_reports_store_error(self, built_index, capsys):
        (built_index / "sketches.npz").write_bytes(b"this is not an npz archive")
        code = main(["index", "info", str(built_index)])
        assert code == 2
        err = capsys.readouterr().err
        # The StoreError's own message survives into the friendly line.
        assert "error:" in err
        assert "sketch store" in err
        assert "Traceback" not in err

    def test_info_on_malformed_index_json(self, built_index, capsys):
        (built_index / "index.json").write_text("{not json", encoding="utf-8")
        code = main(["index", "info", str(built_index)])
        assert code == 2
        assert "malformed index file" in capsys.readouterr().err

    def test_missing_csv_reported_as_error(self, built_index, tmp_path, capsys):
        code = main(
            [
                "index", "query", str(built_index),
                "--csv", str(tmp_path / "ghost.csv"), "--key", "key",
                "--target", "target",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestIndexMaintenanceCommands:
    """`repro index log|compact|jobs` drive the durable-maintenance loop."""

    def test_log_requires_init_first(self, built_index, capsys):
        code = main(["index", "log", str(built_index)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repro index log" in err  # the fix is named in the message
        assert len(err.strip().splitlines()) == 1

    def test_log_init_then_stats(self, built_index, capsys):
        assert main(["index", "log", str(built_index), "--init"]) == 0
        assert "write-ahead log ready under" in capsys.readouterr().out
        assert main(["index", "log", str(built_index)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["last_sequence"] == 0
        assert document["applied_sequence"] == 0
        assert document["pending_deltas"] == 0

    def test_compact_bootstraps_then_skips(self, built_index, capsys):
        main(["index", "log", str(built_index), "--init"])
        capsys.readouterr()
        assert main(["index", "compact", str(built_index)]) == 0
        assert (
            "published generation 1 (0 deltas folded, 6 candidates, "
            "applied sequence 0)" in capsys.readouterr().out
        )
        assert main(["index", "compact", str(built_index)]) == 0
        assert (
            "nothing to compact: generation 1 already covers sequence 0"
            in capsys.readouterr().out
        )

    def test_records_listing_and_delta_compaction(self, built_index, capsys):
        from repro.maintenance import WriteAheadLog

        main(["index", "log", str(built_index), "--init"])
        main(["index", "compact", str(built_index)])
        with WriteAheadLog.attach(built_index) as wal:
            wal.append("remove_table", "lake2", [])
        capsys.readouterr()

        assert main(["index", "log", str(built_index), "--records"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["pending_deltas"] == 1
        assert document["records"] == [
            {"sequence": 1, "op": "remove_table", "table": "lake2", "candidates": 0}
        ]

        assert main(["index", "compact", str(built_index)]) == 0
        assert (
            "published generation 2 (1 deltas folded, 4 candidates, "
            "applied sequence 1)" in capsys.readouterr().out
        )
        assert main(["index", "info", str(built_index)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["candidates"] == 4
        assert "lake2" not in summary["tables"]

    def test_jobs_listing_and_last(self, built_index, capsys):
        main(["index", "log", str(built_index), "--init"])
        main(["index", "compact", str(built_index)])
        main(["index", "compact", str(built_index)])  # no-op, still a job
        capsys.readouterr()

        assert main(["index", "jobs", str(built_index)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["completed"] == 2
        assert document["counts"]["total"] == 2
        assert [job["kind"] for job in document["jobs"]] == ["compaction"] * 2

        assert main(["index", "jobs", str(built_index), "--last"]) == 0
        last = json.loads(capsys.readouterr().out)
        assert last["job_id"] == 2
        assert last["status"] == "completed"
        assert last["detail"]["skipped"] is True

    def test_info_reports_maintenance_block(self, built_index, capsys):
        main(["index", "log", str(built_index), "--init"])
        main(["index", "compact", str(built_index)])
        capsys.readouterr()
        assert main(["index", "info", str(built_index)]) == 0
        summary = json.loads(capsys.readouterr().out)
        block = summary["maintenance"]
        assert block["present"] is True
        assert block["generation"] == 1
        assert block["pending_deltas"] == 0
        assert block["wal"]["segments"] >= 1
        assert block["last_job"]["kind"] == "compaction"

    def test_info_on_plain_directory_reports_absence(self, built_index, capsys):
        assert main(["index", "info", str(built_index)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["maintenance"] == {"present": False}


class TestIndexQueryCommand:
    def test_prints_ranked_results_as_json(self, built_index, base_csv, capsys):
        code = main(
            [
                "index", "query", str(built_index),
                "--csv", str(base_csv), "--key", "key", "--target", "target",
                "--top-k", "3", "--min-join-size", "8",
            ]
        )
        assert code == 0
        results = json.loads(capsys.readouterr().out)
        assert isinstance(results, list) and results
        assert len(results) <= 3
        assert {"candidate_id", "mi_estimate", "containment"} <= set(results[0])
        # Ranked descending by MI estimate.
        estimates = [result["mi_estimate"] for result in results]
        assert estimates == sorted(estimates, reverse=True)

    def test_matches_in_process_query(self, built_index, base_csv, capsys):
        from dataclasses import asdict

        from repro.discovery import load_index
        from repro.discovery.query import AugmentationQuery
        from repro.relational.csvio import read_csv

        assert main(
            [
                "index", "query", str(built_index),
                "--csv", str(base_csv), "--key", "key", "--target", "target",
                "--min-join-size", "8",
            ]
        ) == 0
        via_cli = json.loads(capsys.readouterr().out)
        index = load_index(built_index)
        in_process = index.query(
            AugmentationQuery(
                table=read_csv(base_csv),
                key_column="key",
                target_column="target",
                min_join_size=8,
            )
        )
        assert via_cli == [asdict(result) for result in in_process]


class TestIndexPostingsCommand:
    def test_info_reports_sidecar_stats(self, built_index, capsys):
        assert main(["index", "postings", "info", str(built_index)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["present"] is True
        assert summary["candidates"] == 6

    def test_info_reports_absence(self, built_index, capsys):
        (built_index / "postings.npz").unlink()
        assert main(["index", "postings", "info", str(built_index)]) == 0
        assert json.loads(capsys.readouterr().out) == {"present": False}

    def test_build_recreates_the_sidecar(self, built_index, base_csv, capsys):
        (built_index / "postings.npz").unlink()
        code = main(["index", "postings", "build", str(built_index)])
        assert code == 0
        assert "built posting index over 6 candidates" in capsys.readouterr().out
        assert (built_index / "postings.npz").exists()
        from repro.discovery import load_index

        assert load_index(built_index).postings is not None

    def test_build_on_missing_directory_reported_as_error(self, tmp_path, capsys):
        code = main(["index", "postings", "build", str(tmp_path / "nope")])
        assert code == 2
        assert "no index.json" in capsys.readouterr().err

    def test_query_no_postings_flag_matches_default(
        self, built_index, base_csv, capsys
    ):
        args = [
            "index", "query", str(built_index),
            "--csv", str(base_csv), "--key", "key", "--target", "target",
            "--min-containment", "0.1", "--min-join-size", "8",
        ]
        assert main(args) == 0
        probed = json.loads(capsys.readouterr().out)
        assert main(args + ["--no-postings"]) == 0
        scanned = json.loads(capsys.readouterr().out)
        assert probed == scanned and probed


class TestServeCommand:
    def test_missing_index_fails_fast(self, tmp_path, capsys):
        code = main(["serve", "--index", str(tmp_path / "nope"), "--port", "0"])
        assert code == 2
        assert "no index.json" in capsys.readouterr().err

    def test_serve_answers_http_queries(self, built_index, base_csv):
        """End-to-end through the real CLI entry point in a subprocess."""
        import pathlib
        import subprocess
        import sys as _sys
        import urllib.request

        src_dir = pathlib.Path(__file__).resolve().parents[1] / "src"
        process = subprocess.Popen(
            [
                _sys.executable, "-m", "repro.cli", "serve",
                "--index", str(built_index), "--port", "0", "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        try:
            # Guarded read: a server that dies or stalls before printing its
            # banner must fail the test with diagnostics, not hang the run.
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=1) as reader:
                try:
                    banner = reader.submit(process.stdout.readline).result(timeout=60)
                except TimeoutError:
                    process.kill()
                    raise AssertionError(
                        f"serve never printed its banner; stderr: "
                        f"{process.stderr.read()}"
                    ) from None
            assert "serving" in banner and "http://" in banner, (
                banner,
                process.stderr.read() if process.poll() is not None else "",
            )
            url = banner.split("on ")[1].split(" ")[0]
            with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
                health = json.load(response)
            assert health["status"] == "ok"
            table = {"columns": json.loads(json.dumps(_csv_columns(base_csv)))}
            body = json.dumps(
                {
                    "table": table,
                    "key_column": "key",
                    "target_column": "target",
                    "min_join_size": 8,
                }
            ).encode("utf-8")
            request = urllib.request.Request(url + "/query", data=body, method="POST")
            with urllib.request.urlopen(request, timeout=60) as response:
                answer = json.load(response)
            assert "results" in answer and answer["results"]
        finally:
            process.terminate()
            process.wait(timeout=30)


def _csv_columns(path):
    from repro.relational.csvio import read_csv

    return read_csv(path).to_dict()


class TestIndexIngestCommand:
    def test_ingest_builds_byte_identical_index(self, lake_csvs, tmp_path, capsys):
        batch_dir = tmp_path / "batch.index"
        stream_dir = tmp_path / "stream.index"
        assert (
            main(
                ["index", "build", *map(str, lake_csvs), "--key", "key",
                 "-o", str(batch_dir)]
            )
            == 0
        )
        code = main(
            ["index", "ingest", *map(str, lake_csvs), "--key", "key",
             "--chunk-size", "40", "-o", str(stream_dir)]
        )
        assert code == 0
        assert "ingested 6 candidates" in capsys.readouterr().out
        assert json.loads((batch_dir / "index.json").read_text()) == json.loads(
            (stream_dir / "index.json").read_text()
        )
        from repro.store import load_npz

        batch_store = load_npz(batch_dir / "sketches.npz")
        stream_store = load_npz(stream_dir / "sketches.npz")
        assert batch_store._manifest == stream_store._manifest
        for name in batch_store._arrays:
            assert (
                batch_store.array(name).tobytes()
                == stream_store.array(name).tobytes()
            ), name

    def test_ingest_grows_an_existing_index(self, built_index, lake_csvs, tmp_path, rng, capsys):
        keys = [f"k{i:03d}" for i in range(100)]
        table = Table.from_dict(
            {
                "key": [keys[i] for i in rng.integers(0, 100, size=130)],
                "extra": rng.normal(size=130).tolist(),
            },
            name="late",
        )
        late_csv = tmp_path / "late.csv"
        write_csv(table, late_csv)
        capsys.readouterr()
        code = main(
            ["index", "ingest", str(late_csv), "--index", str(built_index),
             "--key", "key", "--chunk-size", "50"]
        )
        assert code == 0
        assert "ingested 1 candidates" in capsys.readouterr().out
        from repro.discovery import load_index

        index = load_index(built_index)
        assert len(index) == 7
        assert any(
            candidate.profile.table_name == "late" for candidate in index.candidates
        )

    def test_values_flag_restricts_columns(self, lake_csvs, tmp_path, capsys):
        out_dir = tmp_path / "narrow.index"
        code = main(
            ["index", "ingest", str(lake_csvs[0]), "--key", "key",
             "--values", "b", "-o", str(out_dir)]
        )
        assert code == 0
        assert "ingested 1 candidates" in capsys.readouterr().out

    def test_requires_exactly_one_destination(self, lake_csvs, tmp_path, capsys):
        code = main(["index", "ingest", str(lake_csvs[0]), "--key", "key"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err
        code = main(
            ["index", "ingest", str(lake_csvs[0]), "--key", "key",
             "--index", str(tmp_path / "a"), "-o", str(tmp_path / "b")]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_engine_options_rejected_for_existing_index(self, built_index, lake_csvs, capsys):
        code = main(
            ["index", "ingest", str(lake_csvs[0]), "--key", "key",
             "--index", str(built_index), "--capacity", "32"]
        )
        assert code == 2
        assert "keeps its own configuration" in capsys.readouterr().err

    def test_missing_csv_reported_as_error(self, tmp_path, capsys):
        code = main(
            ["index", "ingest", str(tmp_path / "nope.csv"), "--key", "key",
             "-o", str(tmp_path / "out")]
        )
        assert code == 2
        assert "nope.csv" in capsys.readouterr().err


class TestIndexIngestSources:
    """--format / --lake routing through the pluggable source registry."""

    def test_format_flag_registered_with_registry_choices(self):
        args = build_parser().parse_args(
            ["index", "ingest", "t.parquet", "--key", "k", "--format", "parquet",
             "-o", "out"]
        )
        assert args.format == "parquet"
        assert args.lake is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["index", "ingest", "t.xlsx", "--key", "k", "--format", "xlsx",
                 "-o", "out"]
            )

    def test_lake_ingest_matches_positional_ingest(self, lake_csvs, tmp_path, capsys):
        lake_dir = tmp_path / "staging"
        lake_dir.mkdir()
        for path in lake_csvs:
            (lake_dir / path.name).write_bytes(path.read_bytes())
        (lake_dir / "_SUCCESS").write_text("", encoding="utf-8")
        (lake_dir / "notes.txt").write_text("not a table", encoding="utf-8")
        lake_out = tmp_path / "lake.index"
        positional_out = tmp_path / "positional.index"
        code = main(
            ["index", "ingest", "--lake", str(lake_dir), "--key", "key",
             "-o", str(lake_out)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ingested 6 candidates from 3 tables" in output
        assert "1 unrecognized lake files skipped" in output
        assert (
            main(
                ["index", "ingest", *map(str, lake_csvs), "--key", "key",
                 "-o", str(positional_out)]
            )
            == 0
        )
        assert json.loads((lake_out / "index.json").read_text()) == json.loads(
            (positional_out / "index.json").read_text()
        )

    def test_lake_combines_with_positional_tables(self, lake_csvs, tmp_path, capsys):
        lake_dir = tmp_path / "staging"
        lake_dir.mkdir()
        (lake_dir / lake_csvs[0].name).write_bytes(lake_csvs[0].read_bytes())
        code = main(
            ["index", "ingest", str(lake_csvs[1]), "--lake", str(lake_dir),
             "--key", "key", "-o", str(tmp_path / "out.index")]
        )
        assert code == 0
        assert "from 2 tables" in capsys.readouterr().out

    def test_no_tables_and_no_lake_is_an_error(self, tmp_path, capsys):
        code = main(
            ["index", "ingest", "--key", "key", "-o", str(tmp_path / "out")]
        )
        assert code == 2
        assert "--lake" in capsys.readouterr().err

    def test_missing_lake_directory_exits_2(self, tmp_path, capsys):
        code = main(
            ["index", "ingest", "--lake", str(tmp_path / "absent"), "--key", "key",
             "-o", str(tmp_path / "out")]
        )
        assert code == 2
        assert "lake directory not found" in capsys.readouterr().err

    def test_forced_format_overrides_extension(self, lake_csvs, tmp_path, capsys):
        renamed = tmp_path / "table.dat"
        renamed.write_bytes(lake_csvs[0].read_bytes())
        code = main(
            ["index", "ingest", str(renamed), "--format", "csv", "--key", "key",
             "-o", str(tmp_path / "out.index")]
        )
        assert code == 0
        assert "ingested 2 candidates" in capsys.readouterr().out

    def test_unknown_extension_exits_2_naming_formats(self, tmp_path, capsys):
        bad = tmp_path / "table.xlsx"
        bad.write_text("key,a\nx,1\n", encoding="utf-8")
        code = main(
            ["index", "ingest", str(bad), "--key", "key",
             "-o", str(tmp_path / "out")]
        )
        assert code == 2
        error = capsys.readouterr().err
        assert "cannot detect the table format" in error
        assert ".csv" in error and ".parquet" in error

    def test_missing_pyarrow_exits_2_with_install_hint(self, tmp_path, capsys, monkeypatch):
        import builtins
        import sys

        real_import = builtins.__import__

        def block(name, *args, **kwargs):
            if name.startswith("pyarrow"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "pyarrow", raising=False)
        monkeypatch.delitem(sys.modules, "pyarrow.parquet", raising=False)
        monkeypatch.setattr(builtins, "__import__", block)
        parquet = tmp_path / "table.parquet"
        parquet.write_bytes(b"")
        code = main(
            ["index", "ingest", str(parquet), "--key", "key",
             "-o", str(tmp_path / "out")]
        )
        assert code == 2
        assert "pip install pyarrow" in capsys.readouterr().err

    def test_parquet_lake_end_to_end(self, lake_csvs, tmp_path, capsys):
        """Mixed CSV+Parquet lake builds the same index as the all-CSV lake."""
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        from repro.relational.csvio import read_csv

        mixed_dir = tmp_path / "mixed"
        csv_dir = tmp_path / "all_csv"
        mixed_dir.mkdir()
        csv_dir.mkdir()
        for position, path in enumerate(lake_csvs):
            (csv_dir / path.name).write_bytes(path.read_bytes())
            if position % 2 == 0:
                (mixed_dir / path.name).write_bytes(path.read_bytes())
            else:
                table = read_csv(path)
                pq.write_table(
                    pa.table(
                        {c.name: c.values for c in table.columns}
                    ),
                    mixed_dir / f"{path.stem}.parquet",
                    row_group_size=64,
                )
        mixed_out = tmp_path / "mixed.index"
        csv_out = tmp_path / "csv.index"
        for lake, out in ((mixed_dir, mixed_out), (csv_dir, csv_out)):
            assert (
                main(
                    ["index", "ingest", "--lake", str(lake), "--key", "key",
                     "-o", str(out)]
                )
                == 0
            )
        assert json.loads((mixed_out / "index.json").read_text()) == json.loads(
            (csv_out / "index.json").read_text()
        )
