"""Tests for the CDUnif synthetic generator."""

import math

import numpy as np
import pytest

from repro.exceptions import SyntheticDataError
from repro.synthetic.cdunif import cdunif_true_mi, sample_cdunif


class TestTrueMi:
    def test_formula(self):
        for m in (2, 10, 256, 1000):
            expected = math.log(m) - (m - 1) * math.log(2) / m
            assert cdunif_true_mi(m) == pytest.approx(expected)

    def test_paper_range(self):
        """The paper reports MI in [0.3, 6.2] for m in [2, 1000]."""
        assert cdunif_true_mi(2) == pytest.approx(0.347, abs=0.01)
        assert 6.1 < cdunif_true_mi(1000) < 6.3

    def test_paper_anchor_m256(self):
        """m = 256 corresponds to I ~ 4.85 (Section V-B4)."""
        assert cdunif_true_mi(256) == pytest.approx(4.85, abs=0.05)

    def test_monotone_in_m(self):
        values = [cdunif_true_mi(m) for m in range(2, 200)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            cdunif_true_mi(0)


class TestSampling:
    def test_support(self):
        x, y = sample_cdunif(16, 5000, random_state=0)
        assert x.min() >= 0 and x.max() <= 15
        assert np.all(y >= x) and np.all(y <= x + 2)

    def test_x_uniform(self):
        x, _ = sample_cdunif(8, 40_000, random_state=1)
        counts = np.bincount(x, minlength=8)
        assert np.all(np.abs(counts - 5000) < 350)

    def test_y_continuous(self):
        _, y = sample_cdunif(4, 5000, random_state=2)
        assert len(np.unique(y)) == 5000

    def test_invalid_parameters(self):
        with pytest.raises(SyntheticDataError):
            sample_cdunif(0, 10)
        with pytest.raises(SyntheticDataError):
            sample_cdunif(5, 0)
