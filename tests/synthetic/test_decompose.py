"""Tests for the decomposition of (X, Y) samples into joinable tables."""

import numpy as np
import pytest

from repro.exceptions import SyntheticDataError
from repro.relational.featurize import augment
from repro.synthetic.decompose import KeyGeneration, decompose_into_tables


def recover_join(train_table, cand_table, agg="avg"):
    """Materialize the augmentation join and return (feature, target) columns."""
    augmented = augment(
        train_table,
        cand_table,
        base_key="key",
        candidate_key="key",
        candidate_value="feature",
        agg=agg,
        feature_name="x",
    )
    return augmented.column("x").values, augmented.column("target").values


class TestKeyGenerationEnum:
    def test_from_name(self):
        assert KeyGeneration.from_name("KeyInd") is KeyGeneration.KEY_IND
        assert KeyGeneration.from_name("keydep") is KeyGeneration.KEY_DEP
        assert KeyGeneration.from_name(KeyGeneration.KEY_IND) is KeyGeneration.KEY_IND

    def test_unknown_name(self):
        with pytest.raises(SyntheticDataError):
            KeyGeneration.from_name("KeyFoo")


class TestKeyInd:
    def test_one_to_one_relationship(self):
        x = [5, 7, 5, 9]
        y = [1.0, 2.0, 3.0, 4.0]
        train, cand = decompose_into_tables(x, y, KeyGeneration.KEY_IND)
        assert train.num_rows == cand.num_rows == 4
        assert train.column("key").distinct_count() == 4
        assert cand.column("key").distinct_count() == 4

    def test_join_recovers_exact_pairs(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, size=200).tolist()
        y = rng.normal(size=200).tolist()
        train, cand = decompose_into_tables(x, y, "KeyInd")
        feature, target = recover_join(train, cand)
        assert feature == pytest.approx(x)
        assert target == pytest.approx(y)

    def test_key_formatter(self):
        train, cand = decompose_into_tables(
            [1, 2], [3, 4], "KeyInd", key_formatter=lambda k: f"row-{k}"
        )
        assert train.column("key").values == ["row-0", "row-1"]
        assert cand.column("key").values == ["row-0", "row-1"]


class TestKeyDep:
    def test_many_to_one_relationship(self):
        x = [5, 7, 5, 9, 5]
        y = [1.0, 2.0, 3.0, 4.0, 5.0]
        train, cand = decompose_into_tables(x, y, KeyGeneration.KEY_DEP)
        assert train.num_rows == 5
        assert train.column("key").distinct_count() == 3  # distinct x values

    def test_join_recovers_exact_pairs(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 6, size=300).tolist()
        y = rng.normal(size=300).tolist()
        train, cand = decompose_into_tables(x, y, "KeyDep")
        feature, target = recover_join(train, cand)
        assert feature == pytest.approx(x)
        assert target == pytest.approx(y)

    def test_key_equals_feature_value(self):
        x = [3, 4, 3]
        train, cand = decompose_into_tables(x, [1.0, 2.0, 3.0], "KeyDep")
        assert train.column("key").values == x
        assert cand.column("feature").values == x

    def test_continuous_feature_rejected(self):
        with pytest.raises(SyntheticDataError):
            decompose_into_tables([1.5, 2.7], [1.0, 2.0], "KeyDep")


class TestValidation:
    def test_misaligned_inputs(self):
        with pytest.raises(SyntheticDataError):
            decompose_into_tables([1], [1, 2], "KeyInd")

    def test_empty_inputs(self):
        with pytest.raises(SyntheticDataError):
            decompose_into_tables([], [], "KeyInd")

    def test_numpy_scalars_converted(self):
        x = np.array([1, 2, 3])
        y = np.array([0.5, 0.6, 0.7])
        train, cand = decompose_into_tables(x, y, "KeyDep")
        assert all(isinstance(value, int) for value in train.column("key").values)
