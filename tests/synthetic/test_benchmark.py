"""Tests for the synthetic dataset bundles."""

import pytest

from repro.exceptions import SyntheticDataError
from repro.estimators.mle import MLEEstimator
from repro.relational.featurize import augment
from repro.synthetic.benchmark import (
    generate_benchmark_suite,
    generate_cdunif_dataset,
    generate_dataset,
    generate_trinomial_dataset,
    redecompose,
)
from repro.synthetic.decompose import KeyGeneration


class TestGenerateTrinomialDataset:
    def test_basic_structure(self):
        dataset = generate_trinomial_dataset(32, 500, target_mi=1.0, random_state=0)
        assert dataset.distribution == "trinomial"
        assert dataset.size == 500
        assert dataset.train_table.num_rows == 500
        assert dataset.true_mi > 0
        assert set(dataset.params) >= {"p1", "p2", "target_mi"}

    def test_full_join_matches_stored_sample(self):
        dataset = generate_trinomial_dataset(
            16, 400, target_mi=1.2, key_generation="KeyDep", random_state=1
        )
        augmented = augment(
            dataset.train_table,
            dataset.cand_table,
            base_key="key",
            candidate_key="key",
            candidate_value="feature",
            agg="avg",
            feature_name="x",
        )
        assert augmented.column("x").values == pytest.approx(dataset.x.tolist())
        assert augmented.column("target").values == pytest.approx(dataset.y.tolist())

    def test_reproducible_from_seed(self):
        first = generate_trinomial_dataset(16, 300, target_mi=1.0, random_state=7)
        second = generate_trinomial_dataset(16, 300, target_mi=1.0, random_state=7)
        assert first.x.tolist() == second.x.tolist()
        assert first.true_mi == second.true_mi

    def test_full_data_estimate_close_to_true_mi(self):
        dataset = generate_trinomial_dataset(16, 20_000, target_mi=1.5, random_state=3)
        estimate = MLEEstimator().estimate(dataset.x.tolist(), dataset.y.tolist())
        assert estimate == pytest.approx(dataset.true_mi, abs=0.05)


class TestGenerateCdunifDataset:
    def test_basic_structure(self):
        dataset = generate_cdunif_dataset(10, 400, random_state=0)
        assert dataset.distribution == "cdunif"
        assert dataset.m == 10
        assert dataset.true_mi > 0
        assert dataset.cand_table.num_rows == 400

    def test_keydep_supported(self):
        dataset = generate_cdunif_dataset(
            10, 400, key_generation="KeyDep", random_state=1
        )
        assert dataset.train_table.column("key").distinct_count() <= 10


class TestGenerateDataset:
    def test_dispatch(self):
        assert generate_dataset("trinomial", 16, 100, random_state=0).distribution == "trinomial"
        assert generate_dataset("CDUnif", 16, 100, random_state=0).distribution == "cdunif"

    def test_unknown_distribution(self):
        with pytest.raises(SyntheticDataError):
            generate_dataset("zipf", 16, 100)

    def test_describe(self):
        description = generate_dataset("cdunif", 8, 100, random_state=0).describe()
        assert description["distribution"] == "cdunif"
        assert description["m"] == 8
        assert description["size"] == 100


class TestRedecompose:
    def test_preserves_sample_and_truth(self):
        dataset = generate_trinomial_dataset(16, 300, target_mi=1.0, random_state=2)
        redone = redecompose(dataset, "KeyDep")
        assert redone.key_generation is KeyGeneration.KEY_DEP
        assert redone.true_mi == dataset.true_mi
        assert redone.x.tolist() == dataset.x.tolist()
        assert redone.train_table.column("key").values == dataset.x.tolist()


class TestBenchmarkSuite:
    def test_suite_size_and_composition(self):
        suite = generate_benchmark_suite(
            "trinomial",
            m_values=[16, 64],
            datasets_per_m=2,
            size=200,
            key_generations=("KeyInd", "KeyDep"),
            random_state=0,
        )
        assert len(suite) == 8
        assert {dataset.m for dataset in suite} == {16, 64}
        assert {dataset.key_generation for dataset in suite} == {
            KeyGeneration.KEY_IND,
            KeyGeneration.KEY_DEP,
        }

    def test_suite_reproducible(self):
        first = generate_benchmark_suite(
            "cdunif", m_values=[8], datasets_per_m=2, size=100, random_state=5
        )
        second = generate_benchmark_suite(
            "cdunif", m_values=[8], datasets_per_m=2, size=100, random_state=5
        )
        assert first[0].x.tolist() == second[0].x.tolist()
