"""Tests for the Trinomial synthetic generator."""

import math

import numpy as np
import pytest

from repro.exceptions import SyntheticDataError
from repro.synthetic.trinomial import (
    binomial_entropy,
    choose_trinomial_parameters,
    correlation_to_mi,
    mi_to_correlation,
    sample_trinomial,
    trinomial_joint_entropy,
    trinomial_true_mi,
)


class TestMiCorrelationConversion:
    def test_roundtrip(self):
        for mi in (0.1, 0.5, 1.0, 2.5, 3.5):
            assert correlation_to_mi(mi_to_correlation(mi)) == pytest.approx(mi)

    def test_paper_anchor_point(self):
        """The paper notes I = 3.5 corresponds to r ~ 0.999."""
        assert mi_to_correlation(3.5) == pytest.approx(0.999, abs=1e-3)

    def test_zero_mi_zero_correlation(self):
        assert mi_to_correlation(0.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mi_to_correlation(-1.0)
        with pytest.raises(ValueError):
            correlation_to_mi(1.0)


class TestBinomialEntropy:
    def test_degenerate_probability(self):
        assert binomial_entropy(10, 0.0) == 0.0
        assert binomial_entropy(10, 1.0) == 0.0

    def test_single_trial_is_bernoulli(self):
        p = 0.3
        expected = -(p * math.log(p) + (1 - p) * math.log(1 - p))
        assert binomial_entropy(1, p) == pytest.approx(expected)

    def test_matches_gaussian_approximation_for_large_m(self):
        m, p = 2000, 0.4
        gaussian = 0.5 * math.log(2 * math.pi * math.e * m * p * (1 - p))
        assert binomial_entropy(m, p) == pytest.approx(gaussian, abs=0.01)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            binomial_entropy(10, 1.5)


class TestTrinomialEntropyAndMi:
    def test_single_trial_joint_entropy(self):
        """For m = 1 the joint distribution is categorical over 3 outcomes."""
        p1, p2 = 0.2, 0.5
        p3 = 0.3
        expected = -(p1 * math.log(p1) + p2 * math.log(p2) + p3 * math.log(p3))
        assert trinomial_joint_entropy(1, p1, p2) == pytest.approx(expected)

    def test_true_mi_non_negative_and_bounded(self):
        mi = trinomial_true_mi(64, 0.3, 0.4)
        h_x = binomial_entropy(64, 0.3)
        h_y = binomial_entropy(64, 0.4)
        assert 0.0 <= mi <= min(h_x, h_y)

    def test_mi_grows_with_competition(self):
        """Higher p1 + p2 (less slack) means stronger negative dependence."""
        low = trinomial_true_mi(64, 0.2, 0.2)
        high = trinomial_true_mi(64, 0.45, 0.45)
        assert high > low

    def test_normal_approximation_agrees_for_moderate_m(self):
        """The exact MI should be close to the bivariate-normal approximation."""
        m, p1, p2 = 256, 0.4, 0.4
        correlation = -p1 * p2 / math.sqrt(p1 * (1 - p1) * p2 * (1 - p2))
        approx = correlation_to_mi(correlation)
        assert trinomial_true_mi(m, p1, p2) == pytest.approx(approx, rel=0.15)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            trinomial_joint_entropy(10, 0.0, 0.5)
        with pytest.raises(ValueError):
            trinomial_joint_entropy(10, 0.7, 0.4)


class TestParameterSelection:
    def test_targets_are_hit_approximately(self):
        for target in (0.5, 1.5, 2.5, 3.3):
            params = choose_trinomial_parameters(512, target_mi=target, random_state=0)
            assert params.true_mi == pytest.approx(target, abs=0.4)

    def test_p_values_in_valid_range(self):
        params = choose_trinomial_parameters(64, target_mi=1.0, random_state=1)
        assert 0.15 <= params.p1 <= 0.85
        assert 0.15 <= params.p2 <= 0.85
        assert params.p3 > 0.0

    def test_random_target_drawn_when_omitted(self):
        params = choose_trinomial_parameters(64, random_state=2)
        assert 0.0 <= params.target_mi <= 3.5

    def test_invalid_m(self):
        with pytest.raises(SyntheticDataError):
            choose_trinomial_parameters(0, target_mi=1.0)

    def test_negative_target_rejected(self):
        with pytest.raises(SyntheticDataError):
            choose_trinomial_parameters(16, target_mi=-0.5)


class TestSampling:
    def test_shapes_and_ranges(self):
        x, y = sample_trinomial(32, 0.3, 0.4, 500, random_state=0)
        assert x.shape == y.shape == (500,)
        assert x.min() >= 0 and x.max() <= 32
        assert ((x + y) <= 32).all()

    def test_marginal_means(self):
        m, p1, p2 = 64, 0.3, 0.4
        x, y = sample_trinomial(m, p1, p2, 20_000, random_state=1)
        assert np.mean(x) == pytest.approx(m * p1, rel=0.03)
        assert np.mean(y) == pytest.approx(m * p2, rel=0.03)

    def test_negative_correlation(self):
        x, y = sample_trinomial(64, 0.45, 0.45, 20_000, random_state=2)
        assert np.corrcoef(x, y)[0, 1] < -0.5

    def test_invalid_parameters(self):
        with pytest.raises(SyntheticDataError):
            sample_trinomial(10, 0.6, 0.5, 10)
        with pytest.raises(SyntheticDataError):
            sample_trinomial(10, 0.3, 0.3, 0)
