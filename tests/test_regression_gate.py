"""Unit tests for the CI benchmark-regression gate script.

The gate is a standalone stdlib script (``benchmarks/regression_gate.py``),
so it is loaded here by file path.  These tests demonstrate the acceptance
rule: a gated metric that regresses by more than its tolerance (25% for the
speedup ratios) fails the gate with a non-zero exit code.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

GATE_PATH = Path(__file__).parent.parent / "benchmarks" / "regression_gate.py"

spec = importlib.util.spec_from_file_location("regression_gate", GATE_PATH)
gate = importlib.util.module_from_spec(spec)
# Registered before exec: the script's dataclasses resolve their module
# through sys.modules.
sys.modules["regression_gate"] = gate
spec.loader.exec_module(gate)


def write_report(directory: Path, name: str, *, speedup: float, throughput: float):
    directory.mkdir(parents=True, exist_ok=True)
    if name == "engine_batch.json":
        document = {
            "speedup": speedup,
            "sequential": {"pairs_per_second": throughput},
            "concurrent": {"pairs_per_second": throughput},
        }
    elif name == "serving.json":
        document = {
            "cached_speedup": speedup,
            "coalescing": {"collapsed_fraction": 1.0},
            "throughput": {"qps": throughput},
        }
    elif name == "hashing.json":
        document = {
            "speedup": speedup,
            "vectorized": {"columns_per_second": throughput},
        }
    elif name == "postings.json":
        document = {
            "touched_fraction": 0.1 / max(speedup, 0.1),
            "touched_growth": 1.0,
            "plan_speedup": speedup,
        }
    elif name == "ingest.json":
        document = {
            "throughput_ratio": speedup,
            "memory": {"peak_fraction": 1.0 / max(speedup, 0.1)},
            "ingest": {"columns_per_second": throughput},
        }
    elif name == "mp_serving.json":
        document = {
            "scaling_ratio": speedup,
            "identical_results": 1.0,
            "process": {"qps": throughput},
        }
    elif name == "maintenance.json":
        document = {
            "success_fraction": 1.0,
            "generations_published": 4.0,
            "reload_p50_ratio": 10.0 / max(speedup, 0.1),
        }
    else:
        document = {
            "speedup": speedup,
            "sharded": {"columns_per_second": throughput},
        }
    (directory / name).write_text(json.dumps(document), encoding="utf-8")


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    for name in gate.GATED_REPORTS:
        write_report(results, name, speedup=3.0, throughput=1000.0)
        write_report(baselines, name, speedup=3.0, throughput=1000.0)
    return results, baselines


def run_gate(results: Path, baselines: Path) -> int:
    return gate.main(
        ["--results-dir", str(results), "--baselines-dir", str(baselines)]
    )


class TestGateDecision:
    def test_identical_results_pass(self, dirs):
        results, baselines = dirs
        assert run_gate(results, baselines) == 0

    def test_improvement_passes(self, dirs):
        results, baselines = dirs
        write_report(results, "index_build.json", speedup=9.0, throughput=5000.0)
        assert run_gate(results, baselines) == 0

    def test_slowdown_within_tolerance_passes(self, dirs):
        results, baselines = dirs
        # 20% below baseline: inside the 25% tolerance.
        write_report(results, "index_build.json", speedup=2.4, throughput=1000.0)
        assert run_gate(results, baselines) == 0

    def test_speedup_regression_beyond_25_percent_fails(self, dirs, capsys):
        results, baselines = dirs
        # 40% below the baseline of 3.0: the gate must fail.
        write_report(results, "index_build.json", speedup=1.8, throughput=1000.0)
        assert run_gate(results, baselines) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "speedup" in err

    def test_throughput_collapse_fails(self, dirs):
        results, baselines = dirs
        # Ratio fine, but throughput fell by >75%: catastrophic regression.
        write_report(results, "index_build.json", speedup=3.0, throughput=100.0)
        assert run_gate(results, baselines) == 1

    def test_serving_cache_speedup_collapse_fails(self, dirs):
        results, baselines = dirs
        # Cached speedup fell by >75% (e.g. the result cache stopped
        # hitting): the gate must fail even though throughput held.
        write_report(results, "serving.json", speedup=0.5, throughput=1000.0)
        assert run_gate(results, baselines) == 1

    def test_serving_coalescing_regression_fails(self, dirs):
        results, baselines = dirs
        document = {
            "cached_speedup": 3.0,
            "coalescing": {"collapsed_fraction": 0.5},  # was 1.0
            "throughput": {"qps": 1000.0},
        }
        (results / "serving.json").write_text(json.dumps(document), encoding="utf-8")
        assert run_gate(results, baselines) == 1

    def test_missing_result_fails(self, dirs):
        results, baselines = dirs
        (results / "index_build.json").unlink()
        assert run_gate(results, baselines) == 1

    def test_missing_baseline_fails(self, dirs):
        results, baselines = dirs
        (baselines / "engine_batch.json").unlink()
        assert run_gate(results, baselines) == 1

    def test_missing_metric_fails(self, dirs):
        results, baselines = dirs
        (results / "index_build.json").write_text(
            json.dumps({"speedup": 3.0}), encoding="utf-8"
        )
        assert run_gate(results, baselines) == 1

    def test_malformed_result_fails(self, dirs):
        results, baselines = dirs
        (results / "index_build.json").write_text("{broken", encoding="utf-8")
        assert run_gate(results, baselines) == 1


class TestMetricSpec:
    def test_lower_is_better_direction(self):
        spec = gate.MetricSpec("serial.seconds", "lower", 0.25)
        assert spec.check(1.0, 1.0) is None
        assert spec.check(1.2, 1.0) is None
        assert spec.check(1.3, 1.0) is not None

    def test_degenerate_baseline_is_ignored(self):
        spec = gate.MetricSpec("speedup", "higher")
        assert spec.check(0.1, 0.0) is None

    def test_extract_metric_rejects_non_numeric(self):
        with pytest.raises(KeyError):
            gate.extract_metric({"speedup": True}, "speedup")
        with pytest.raises(KeyError):
            gate.extract_metric({"a": {"b": "fast"}}, "a.b")
        assert gate.extract_metric({"a": {"b": 2.5}}, "a.b") == 2.5


class TestUpdateBaselines:
    def test_promotes_current_results(self, dirs, tmp_path):
        results, _ = dirs
        fresh = tmp_path / "fresh-baselines"
        code = gate.main(
            [
                "--results-dir",
                str(results),
                "--baselines-dir",
                str(fresh),
                "--update-baselines",
            ]
        )
        assert code == 0
        for name in gate.GATED_REPORTS:
            assert (fresh / name).exists()
        assert run_gate(results, fresh) == 0


class TestPostingsGate:
    def test_touched_fraction_regression_fails(self, dirs):
        results, baselines = dirs
        document = {
            "touched_fraction": 0.5,  # baseline 0.1/3: probe stopped pruning
            "touched_growth": 1.0,
            "plan_speedup": 3.0,
        }
        (results / "postings.json").write_text(json.dumps(document), encoding="utf-8")
        assert run_gate(results, baselines) == 1

    def test_touched_growth_regression_fails(self, dirs):
        results, baselines = dirs
        document = {
            "touched_fraction": 0.1 / 3.0,
            "touched_growth": 4.0,  # baseline 1.0: no longer sublinear
            "plan_speedup": 3.0,
        }
        (results / "postings.json").write_text(json.dumps(document), encoding="utf-8")
        assert run_gate(results, baselines) == 1

    def test_plan_speedup_collapse_fails(self, dirs):
        results, baselines = dirs
        write_report(results, "postings.json", speedup=0.5, throughput=1000.0)
        assert run_gate(results, baselines) == 1


class TestMpServingGate:
    def test_scaling_regression_fails(self, dirs):
        results, baselines = dirs
        # Baseline 3.0, current 1.4: below the 25%-tolerance floor of 2.25.
        write_report(results, "mp_serving.json", speedup=1.4, throughput=1000.0)
        assert run_gate(results, baselines) == 1

    def test_identity_flag_has_zero_tolerance(self, dirs, capsys):
        results, baselines = dirs
        document = {
            "scaling_ratio": 3.0,
            "identical_results": 0.0,  # answers diverged: hard failure
            "process": {"qps": 1000.0},
        }
        (results / "mp_serving.json").write_text(
            json.dumps(document), encoding="utf-8"
        )
        assert run_gate(results, baselines) == 1
        assert "identical_results" in capsys.readouterr().err


class TestMaintenanceGate:
    def test_failed_query_has_zero_tolerance(self, dirs, capsys):
        results, baselines = dirs
        document = {
            "success_fraction": 0.99,  # one dropped query: hard failure
            "generations_published": 4.0,
            "reload_p50_ratio": 3.0,
        }
        (results / "maintenance.json").write_text(
            json.dumps(document), encoding="utf-8"
        )
        assert run_gate(results, baselines) == 1
        assert "success_fraction" in capsys.readouterr().err

    def test_reload_latency_regression_fails(self, dirs):
        results, baselines = dirs
        # Baseline ratio 10/3; a 0.2x "speedup" puts the churn/quiet ratio
        # at 50, far past the 75%-tolerance ceiling.
        write_report(results, "maintenance.json", speedup=0.2, throughput=1000.0)
        assert run_gate(results, baselines) == 1


class TestIngestGate:
    def test_memory_regression_fails(self, dirs):
        results, baselines = dirs
        document = {
            "throughput_ratio": 3.0,
            "memory": {"peak_fraction": 3.0},  # baseline 1/3: blew the bound
            "ingest": {"columns_per_second": 1000.0},
        }
        (results / "ingest.json").write_text(json.dumps(document), encoding="utf-8")
        assert run_gate(results, baselines) == 1

    def test_throughput_ratio_regression_fails(self, dirs):
        results, baselines = dirs
        write_report(results, "ingest.json", speedup=1.0, throughput=1000.0)
        assert run_gate(results, baselines) == 1
