"""Unit tests for the columnar sketch store (save_npz / load_npz)."""

from __future__ import annotations

import json
import math
import zipfile

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.sketches.base import Sketch, available_methods, get_builder
from repro.store import (
    STORE_FORMAT_VERSION,
    load_npz,
    pack_value_lists,
    save_npz,
    unpack_value_lists,
)


def make_sketch(values, value_dtype=DType.FLOAT, **overrides) -> Sketch:
    fields = dict(
        method="TUPSK",
        side="candidate",
        seed=3,
        capacity=max(len(values), 1),
        key_ids=list(range(len(values))),
        values=list(values),
        value_dtype=value_dtype,
        table_rows=len(values),
        distinct_keys=len(values),
        key_column="key",
        value_column="value",
        table_name="t",
        aggregate="avg",
    )
    fields.update(overrides)
    return Sketch(**fields)


@pytest.fixture
def method_sketches(rng):
    keys = [f"k{i}" for i in rng.integers(0, 60, size=250)]
    table = Table.from_dict(
        {
            "key": keys,
            "num": rng.normal(size=250).tolist(),
            "cat": [["hot", "cold"][i] for i in rng.integers(0, 2, size=250)],
            "mix": [None if i % 6 == 0 else i for i in range(250)],
        },
        name="lake0",
    )
    sketches = []
    for method in available_methods():
        sketches.append(get_builder(method, 32, 5).sketch_base(table, "key", "num"))
        sketches.append(
            get_builder(method, 32, 5).sketch_candidate(table, "key", "num", agg="avg")
        )
        sketches.append(
            get_builder(method, 32, 5).sketch_candidate(table, "key", "cat", agg="mode")
        )
        sketches.append(
            get_builder(method, 32, 5).sketch_candidate(table, "key", "mix", agg="first")
        )
    return sketches


class TestRoundTrip:
    def test_every_method_and_side_round_trips(self, tmp_path, method_sketches):
        path = save_npz(tmp_path / "store.npz", method_sketches)
        store = load_npz(path)
        assert len(store) == len(method_sketches)
        for original, loaded in zip(method_sketches, store):
            assert loaded == original

    def test_memory_mapped_reads_round_trip(self, tmp_path, method_sketches):
        path = save_npz(tmp_path / "store.npz", method_sketches)
        store = load_npz(path, mmap=True)
        assert store.sketches() == method_sketches

    def test_single_sketch_form(self, tmp_path):
        sketch = make_sketch([1.5, -2.25, 0.0])
        assert load_npz(save_npz(tmp_path / "one.npz", sketch))[0] == sketch

    def test_special_floats_survive(self, tmp_path):
        sketch = make_sketch([float("nan"), float("inf"), float("-inf"), -0.0])
        loaded = load_npz(save_npz(tmp_path / "f.npz", sketch))[0]
        assert math.isnan(loaded.values[0])
        assert loaded.values[1] == float("inf")
        assert loaded.values[2] == float("-inf")
        assert math.copysign(1.0, loaded.values[3]) == -1.0

    def test_mixed_and_big_int_values_survive(self, tmp_path):
        values = [None, True, False, 2**80, -(2**70), "text", 1.25]
        sketch = make_sketch(values, value_dtype=DType.STRING, aggregate=None)
        loaded = load_npz(save_npz(tmp_path / "m.npz", sketch))[0]
        assert loaded.values == values
        assert [type(value) for value in loaded.values] == [
            type(value) for value in values
        ]

    def test_numpy_scalars_in_mixed_values_survive(self, tmp_path):
        """np scalars mixed with None spill to the JSON pool and coerce."""
        values = [np.int64(7), None, np.float64(1.5), np.bool_(True)]
        sketch = make_sketch(values, value_dtype=DType.STRING, aggregate=None)
        loaded = load_npz(save_npz(tmp_path / "np.npz", sketch))[0]
        assert loaded.values == [7, None, 1.5, True]

    def test_metadata_round_trips(self, tmp_path):
        sketch = make_sketch([1.0], metadata={"source": "unit", "rank": 3})
        loaded = load_npz(save_npz(tmp_path / "meta.npz", sketch))[0]
        assert loaded.metadata == {"source": "unit", "rank": 3}

    def test_empty_store_round_trips(self, tmp_path):
        store = load_npz(save_npz(tmp_path / "empty.npz", []))
        assert len(store) == 0
        assert store.sketches() == []

    def test_extra_arrays_and_manifest(self, tmp_path):
        arrays, entries = pack_value_lists([[1, 2], ["a"], []], "kmv_values")
        path = save_npz(
            tmp_path / "x.npz",
            [make_sketch([1.0])],
            extra_arrays=arrays,
            extra_manifest={"kmv": entries},
        )
        store = load_npz(path)
        restored = unpack_value_lists(
            {name: store.array(name) for name in arrays},
            store.extra_manifest["kmv"],
            "kmv_values",
        )
        assert restored == [[1, 2], ["a"], []]


class TestErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="no sketch store"):
            load_npz(tmp_path / "missing.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(StoreError, match="not a valid sketch store"):
            load_npz(path)

    def test_truncated_file(self, tmp_path, method_sketches):
        path = save_npz(tmp_path / "store.npz", method_sketches)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StoreError):
            load_npz(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(StoreError, match="manifest"):
            load_npz(path)

    def test_version_mismatch_names_versions(self, tmp_path):
        path = save_npz(tmp_path / "store.npz", [make_sketch([1.0])])
        with zipfile.ZipFile(path) as archive:
            with archive.open("manifest.npy") as member:
                manifest_array = np.lib.format.read_array(member)
            others = {
                name: archive.read(name)
                for name in archive.namelist()
                if name != "manifest.npy"
            }
        manifest = json.loads(bytes(manifest_array).decode("utf-8"))
        manifest["version"] = STORE_FORMAT_VERSION + 41
        new_manifest = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        with zipfile.ZipFile(path, "w") as archive:
            for name, payload in others.items():
                archive.writestr(name, payload)
            import io

            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, new_manifest)
            archive.writestr("manifest.npy", buffer.getvalue())
        with pytest.raises(StoreError, match=f"version {STORE_FORMAT_VERSION + 41}"):
            load_npz(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "store.npz"
        manifest = np.frombuffer(
            json.dumps({"magic": "something-else", "version": 1}).encode("utf-8"),
            dtype=np.uint8,
        )
        np.savez(path, manifest=manifest)
        with pytest.raises(StoreError, match="bad magic"):
            load_npz(path)

    def test_unstorable_metadata_rejected_at_save(self, tmp_path):
        sketch = make_sketch([1.0], metadata={"bad": object()})
        with pytest.raises(StoreError, match="metadata"):
            save_npz(tmp_path / "bad.npz", sketch)

    def test_non_sketch_entry_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="not a Sketch"):
            save_npz(tmp_path / "bad.npz", [make_sketch([1.0]), "nope"])
