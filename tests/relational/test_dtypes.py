"""Tests for column data types and type inference."""

import math

import pytest

from repro.exceptions import TypeInferenceError
from repro.relational.dtypes import (
    DType,
    coerce_value,
    infer_column_dtype,
    infer_dtype,
    is_missing_value,
)


class TestIsMissingValue:
    def test_none_is_missing(self):
        assert is_missing_value(None)

    def test_nan_is_missing(self):
        assert is_missing_value(float("nan"))

    def test_empty_string_is_missing(self):
        assert is_missing_value("")

    def test_common_null_tokens_are_missing(self):
        for token in ("NA", "n/a", "NULL", "None", "-", "?", "nan"):
            assert is_missing_value(token), token

    def test_regular_values_are_not_missing(self):
        for value in (0, 0.0, "0", "abc", "no", False):
            assert not is_missing_value(value), value


class TestInferDtype:
    def test_int(self):
        assert infer_dtype(5) is DType.INT

    def test_float(self):
        assert infer_dtype(5.5) is DType.FLOAT

    def test_string(self):
        assert infer_dtype("hello") is DType.STRING

    def test_numeric_looking_string_is_int(self):
        assert infer_dtype("42") is DType.INT
        assert infer_dtype("-7") is DType.INT

    def test_float_looking_string_is_float(self):
        assert infer_dtype("3.14") is DType.FLOAT
        assert infer_dtype("1e-3") is DType.FLOAT

    def test_missing(self):
        assert infer_dtype(None) is DType.MISSING
        assert infer_dtype("") is DType.MISSING

    def test_bool_is_categorical(self):
        assert infer_dtype(True) is DType.STRING


class TestInferColumnDtype:
    def test_all_ints(self):
        assert infer_column_dtype([1, 2, 3]) is DType.INT

    def test_ints_and_floats_promote_to_float(self):
        assert infer_column_dtype([1, 2.5, 3]) is DType.FLOAT

    def test_any_string_dominates(self):
        assert infer_column_dtype([1, 2.5, "x"]) is DType.STRING

    def test_missing_values_are_ignored(self):
        assert infer_column_dtype([None, 1, None, 2]) is DType.INT

    def test_all_missing(self):
        assert infer_column_dtype([None, "", None]) is DType.MISSING

    def test_numeric_strings(self):
        assert infer_column_dtype(["1", "2", "3"]) is DType.INT
        assert infer_column_dtype(["1.5", "2"]) is DType.FLOAT


class TestCoerceValue:
    def test_coerce_to_string(self):
        assert coerce_value(42, DType.STRING) == "42"

    def test_coerce_to_int(self):
        assert coerce_value("42", DType.INT) == 42
        assert coerce_value(42.0, DType.INT) == 42

    def test_coerce_to_float(self):
        assert coerce_value("3.5", DType.FLOAT) == pytest.approx(3.5)

    def test_missing_always_none(self):
        for dtype in DType:
            assert coerce_value(None, dtype) is None
            assert coerce_value("NA", dtype) is None

    def test_invalid_coercion_raises(self):
        with pytest.raises(TypeInferenceError):
            coerce_value("not-a-number", DType.FLOAT)
        with pytest.raises(TypeInferenceError):
            coerce_value("abc", DType.INT)

    def test_nan_treated_as_missing(self):
        assert coerce_value(math.nan, DType.FLOAT) is None


class TestDTypeProperties:
    def test_numeric_flags(self):
        assert DType.INT.is_numeric
        assert DType.FLOAT.is_numeric
        assert not DType.STRING.is_numeric

    def test_categorical_flags(self):
        assert DType.STRING.is_categorical
        assert not DType.INT.is_categorical
        assert not DType.FLOAT.is_categorical
