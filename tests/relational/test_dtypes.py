"""Tests for column data types and type inference."""

import math

import pytest

from repro.exceptions import TypeInferenceError
from repro.relational.dtypes import (
    DType,
    DtypeFolder,
    coerce_value,
    infer_column_dtype,
    infer_dtype,
    is_missing_value,
)


class TestIsMissingValue:
    def test_none_is_missing(self):
        assert is_missing_value(None)

    def test_nan_is_missing(self):
        assert is_missing_value(float("nan"))

    def test_empty_string_is_missing(self):
        assert is_missing_value("")

    def test_common_null_tokens_are_missing(self):
        for token in ("NA", "n/a", "NULL", "None", "-", "?", "nan"):
            assert is_missing_value(token), token

    def test_regular_values_are_not_missing(self):
        for value in (0, 0.0, "0", "abc", "no", False):
            assert not is_missing_value(value), value


class TestInferDtype:
    def test_int(self):
        assert infer_dtype(5) is DType.INT

    def test_float(self):
        assert infer_dtype(5.5) is DType.FLOAT

    def test_string(self):
        assert infer_dtype("hello") is DType.STRING

    def test_numeric_looking_string_is_int(self):
        assert infer_dtype("42") is DType.INT
        assert infer_dtype("-7") is DType.INT

    def test_float_looking_string_is_float(self):
        assert infer_dtype("3.14") is DType.FLOAT
        assert infer_dtype("1e-3") is DType.FLOAT

    def test_missing(self):
        assert infer_dtype(None) is DType.MISSING
        assert infer_dtype("") is DType.MISSING

    def test_bool_is_categorical(self):
        assert infer_dtype(True) is DType.STRING


class TestInferColumnDtype:
    def test_all_ints(self):
        assert infer_column_dtype([1, 2, 3]) is DType.INT

    def test_ints_and_floats_promote_to_float(self):
        assert infer_column_dtype([1, 2.5, 3]) is DType.FLOAT

    def test_any_string_dominates(self):
        assert infer_column_dtype([1, 2.5, "x"]) is DType.STRING

    def test_missing_values_are_ignored(self):
        assert infer_column_dtype([None, 1, None, 2]) is DType.INT

    def test_all_missing(self):
        assert infer_column_dtype([None, "", None]) is DType.MISSING

    def test_numeric_strings(self):
        assert infer_column_dtype(["1", "2", "3"]) is DType.INT
        assert infer_column_dtype(["1.5", "2"]) is DType.FLOAT


class TestCoerceValue:
    def test_coerce_to_string(self):
        assert coerce_value(42, DType.STRING) == "42"

    def test_coerce_to_int(self):
        assert coerce_value("42", DType.INT) == 42
        assert coerce_value(42.0, DType.INT) == 42

    def test_coerce_to_float(self):
        assert coerce_value("3.5", DType.FLOAT) == pytest.approx(3.5)

    def test_missing_always_none(self):
        for dtype in DType:
            assert coerce_value(None, dtype) is None
            assert coerce_value("NA", dtype) is None

    def test_invalid_coercion_raises(self):
        with pytest.raises(TypeInferenceError):
            coerce_value("not-a-number", DType.FLOAT)
        with pytest.raises(TypeInferenceError):
            coerce_value("abc", DType.INT)

    def test_nan_treated_as_missing(self):
        assert coerce_value(math.nan, DType.FLOAT) is None


class TestDTypeProperties:
    def test_numeric_flags(self):
        assert DType.INT.is_numeric
        assert DType.FLOAT.is_numeric
        assert not DType.STRING.is_numeric

    def test_categorical_flags(self):
        assert DType.STRING.is_categorical
        assert not DType.INT.is_categorical
        assert not DType.FLOAT.is_categorical


class TestDtypeFolder:
    """The one incremental inference shared by every schema path."""

    COLUMNS = [
        [1, 2, 3],
        [1, 2.5, None],
        ["x", 1, 2.5],
        [None, "", "NA"],
        ["1", "2.5", "3"],
        [True, False],
    ]

    @pytest.mark.parametrize("values", COLUMNS)
    def test_incremental_fold_matches_batch_inference(self, values):
        folder = DtypeFolder()
        for value in values:
            folder.observe(value)
        assert folder.dtype is infer_column_dtype(values)

    @pytest.mark.parametrize("values", COLUMNS)
    def test_split_fold_combines_to_the_same_dtype(self, values):
        for split in range(len(values) + 1):
            left, right = DtypeFolder(), DtypeFolder()
            for value in values[:split]:
                left.observe(value)
            for value in values[split:]:
                right.observe(value)
            left.combine(right)
            assert left.dtype is infer_column_dtype(values), split

    def test_observe_dtype_folds_chunk_schemas(self):
        folder = DtypeFolder()
        folder.observe_dtype(DType.INT)
        assert folder.dtype is DType.INT
        folder.observe_dtype(DType.FLOAT)
        assert folder.dtype is DType.FLOAT
        folder.observe_dtype(DType.MISSING)
        assert folder.dtype is DType.FLOAT
        folder.observe_dtype(DType.STRING)
        assert folder.dtype is DType.STRING

    def test_every_schema_path_shares_the_folder(self, tmp_path):
        """Regression for the dedup: CSVReader.schema, read_csv and the
        streaming sketchers must all answer through the same inference (so a
        rule change cannot skew one path)."""
        from repro.ingest import sketchers
        from repro.ingest.reader import CSVReader
        from repro.relational.csvio import read_csv

        assert sketchers._DtypeTracker is DtypeFolder

        path = tmp_path / "drift.csv"
        path.write_text("key,value\na,1\nb,2\nc,3.5\n", encoding="utf-8")
        reader_schema = CSVReader(path).schema()
        batch_schema = read_csv(path).schema()
        assert reader_schema == batch_schema == {
            "key": DType.STRING,
            "value": DType.FLOAT,
        }
