"""Tests for CSV reading and writing."""

import io

import pytest

from repro.exceptions import SchemaError
from repro.relational.csvio import read_csv, write_csv
from repro.relational.dtypes import DType
from repro.relational.table import Table


class TestReadCsv:
    def test_reads_and_infers_types(self):
        buffer = io.StringIO("zip,trips,city\n11201,136,Brooklyn\n10011,112,Manhattan\n")
        table = read_csv(buffer, name="trips")
        assert table.name == "trips"
        assert table.column("zip").dtype is DType.INT
        assert table.column("trips").values == [136, 112]
        assert table.column("city").dtype is DType.STRING

    def test_empty_fields_become_missing(self):
        buffer = io.StringIO("a,b\n1,\n,2\n")
        table = read_csv(buffer)
        assert table.column("a").values == [1, None]
        assert table.column("b").values == [None, 2]

    def test_projection_at_read_time(self):
        buffer = io.StringIO("a,b,c\n1,2,3\n")
        table = read_csv(buffer, columns=["c", "a"])
        assert table.column_names == ("c", "a")

    def test_empty_input_raises(self):
        with pytest.raises(SchemaError):
            read_csv(io.StringIO(""))

    def test_ragged_rows_raise(self):
        with pytest.raises(SchemaError):
            read_csv(io.StringIO("a,b\n1\n"))

    def test_custom_delimiter(self):
        table = read_csv(io.StringIO("a;b\n1;2\n"), delimiter=";")
        assert table.column("b").values == [2]


class TestWriteCsv:
    def test_roundtrip_through_file(self, tmp_path, taxi_table):
        path = tmp_path / "taxi.csv"
        write_csv(taxi_table, path)
        restored = read_csv(path)
        assert restored.column("zipcode").values == [
            int(z) for z in taxi_table.column("zipcode").values
        ] or restored.column("zipcode").values == taxi_table.column("zipcode").values
        assert restored.column("num_trips").values == taxi_table.column("num_trips").values
        assert restored.name == "taxi"

    def test_missing_written_as_empty(self):
        table = Table.from_dict({"a": [1, None], "b": ["x", "y"]})
        buffer = io.StringIO()
        write_csv(table, buffer)
        assert buffer.getvalue().splitlines() == ["a,b", "1,x", ",y"]

    def test_roundtrip_preserves_row_count(self, tmp_path):
        table = Table.from_dict({"a": list(range(50)), "b": [f"v{i}" for i in range(50)]})
        path = tmp_path / "data.csv"
        write_csv(table, path)
        assert read_csv(path).num_rows == 50
