"""Tests for inner and left-outer equi-joins."""

import pytest

from repro.exceptions import JoinError
from repro.relational.join import inner_join, join_cardinality, left_outer_join
from repro.relational.table import Table


class TestInnerJoin:
    def test_one_to_one(self, taxi_table, demographics_table):
        joined = inner_join(taxi_table, demographics_table, "zipcode")
        assert joined.num_rows == taxi_table.num_rows  # every zipcode matches
        assert "borough" in joined
        assert "population" in joined

    def test_non_matching_rows_dropped(self):
        left = Table.from_dict({"k": ["a", "b"], "v": [1, 2]})
        right = Table.from_dict({"k": ["b", "c"], "w": [10, 20]})
        joined = inner_join(left, right, "k")
        assert joined.num_rows == 1
        assert joined.row(0) == {"k": "b", "v": 2, "w": 10}

    def test_many_to_many_multiplies(self):
        left = Table.from_dict({"k": ["a", "a"], "v": [1, 2]})
        right = Table.from_dict({"k": ["a", "a", "a"], "w": [1, 2, 3]})
        assert inner_join(left, right, "k").num_rows == 6

    def test_null_keys_never_match(self):
        left = Table.from_dict({"k": [None, "a"], "v": [1, 2]})
        right = Table.from_dict({"k": [None, "a"], "w": [3, 4]})
        joined = inner_join(left, right, "k")
        assert joined.num_rows == 1

    def test_name_clash_gets_suffix(self):
        left = Table.from_dict({"k": ["a"], "v": [1]})
        right = Table.from_dict({"k": ["a"], "v": [9]})
        joined = inner_join(left, right, "k")
        assert set(joined.column_names) == {"k", "v", "v_right"}

    def test_missing_key_column_raises(self, taxi_table, demographics_table):
        with pytest.raises(JoinError):
            inner_join(taxi_table, demographics_table, "nope")
        with pytest.raises(JoinError):
            inner_join(taxi_table, demographics_table, "zipcode", "nope")

    def test_different_key_names(self):
        left = Table.from_dict({"zip_left": ["a"], "v": [1]})
        right = Table.from_dict({"zip_right": ["a"], "w": [2]})
        joined = inner_join(left, right, "zip_left", "zip_right")
        assert joined.num_rows == 1


class TestLeftOuterJoin:
    def test_preserves_left_rows(self, taxi_table, weather_table):
        aggregated = weather_table.group_by("date", "temp", "avg")
        joined = left_outer_join(taxi_table, aggregated, "date")
        assert joined.num_rows == taxi_table.num_rows

    def test_unmatched_rows_get_none(self):
        left = Table.from_dict({"k": ["a", "z"], "v": [1, 2]})
        right = Table.from_dict({"k": ["a"], "w": [10]})
        joined = left_outer_join(left, right, "k")
        assert joined.column("w").values == [10, None]

    def test_expect_unique_right_keys_raises_on_duplicates(self, taxi_table, weather_table):
        with pytest.raises(JoinError):
            left_outer_join(
                taxi_table, weather_table, "date", expect_unique_right_keys=True
            )

    def test_many_to_one_matches_example1(self, taxi_table, demographics_table):
        """The paper's Figure 1: augmenting taxi trips with demographics by ZIP."""
        joined = left_outer_join(taxi_table, demographics_table, "zipcode")
        assert joined.num_rows == taxi_table.num_rows
        boroughs = joined.column("borough").values
        assert set(boroughs) == {"Brooklyn", "Manhattan"}

    def test_null_left_keys_kept_with_null_feature(self):
        left = Table.from_dict({"k": [None, "a"], "v": [1, 2]})
        right = Table.from_dict({"k": ["a"], "w": [10]})
        joined = left_outer_join(left, right, "k")
        assert joined.num_rows == 2
        assert joined.column("w").values == [None, 10]


class TestJoinCardinality:
    def test_matches_inner_join_size(self, taxi_table, weather_table):
        expected = inner_join(taxi_table, weather_table, "date").num_rows
        assert join_cardinality(taxi_table, weather_table, "date") == expected

    def test_zero_when_disjoint(self):
        left = Table.from_dict({"k": ["a"], "v": [1]})
        right = Table.from_dict({"k": ["b"], "w": [1]})
        assert join_cardinality(left, right, "k") == 0
