"""Tests for the Table class."""

import pytest

from repro.exceptions import ColumnNotFoundError, SchemaError
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.relational.table import Table


class TestConstruction:
    def test_from_dict(self):
        table = Table.from_dict({"a": [1, 2], "b": ["x", "y"]}, name="t")
        assert table.num_rows == 2
        assert table.num_columns == 2
        assert table.column_names == ("a", "b")
        assert table.name == "t"

    def test_from_rows(self):
        table = Table.from_rows([[1, "x"], [2, "y"]], ["a", "b"])
        assert table.column("a").values == [1, 2]
        assert table.column("b").values == ["x", "y"]

    def test_from_rows_empty(self):
        table = Table.from_rows([], ["a", "b"])
        assert table.num_rows == 0

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table([Column("a", [1, 2]), Column("b", [1])])

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table([])

    def test_from_rows_bad_width_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows([[1, 2], [3]], ["a", "b"])


class TestAccess:
    def test_column_lookup(self, taxi_table):
        assert taxi_table.column("zipcode").values[0] == "11201"
        assert taxi_table["num_trips"].dtype is DType.INT

    def test_missing_column_raises(self, taxi_table):
        with pytest.raises(ColumnNotFoundError) as excinfo:
            taxi_table.column("missing")
        assert "missing" in str(excinfo.value)
        assert "zipcode" in str(excinfo.value)

    def test_row_and_iter_rows(self, taxi_table):
        row = taxi_table.row(0)
        assert row == {"date": "2017-01-01", "zipcode": "11201", "num_trips": 136}
        assert len(list(taxi_table.iter_rows())) == taxi_table.num_rows

    def test_contains(self, taxi_table):
        assert "date" in taxi_table
        assert "nope" not in taxi_table

    def test_schema(self, taxi_table):
        schema = taxi_table.schema()
        assert schema["date"] is DType.STRING
        assert schema["num_trips"] is DType.INT

    def test_to_dict_roundtrip(self, taxi_table):
        rebuilt = Table.from_dict(
            taxi_table.to_dict(), name=taxi_table.name, dtypes=taxi_table.schema()
        )
        assert rebuilt == taxi_table


class TestRelationalOperations:
    def test_select(self, taxi_table):
        projected = taxi_table.select(["num_trips", "date"])
        assert projected.column_names == ("num_trips", "date")
        assert projected.num_rows == taxi_table.num_rows

    def test_with_column_appends(self, taxi_table):
        extended = taxi_table.with_column(
            Column("flag", [1] * taxi_table.num_rows)
        )
        assert "flag" in extended
        assert taxi_table.num_columns + 1 == extended.num_columns

    def test_with_column_replaces_same_name(self, taxi_table):
        replaced = taxi_table.with_column(
            Column("num_trips", [0] * taxi_table.num_rows)
        )
        assert replaced.column("num_trips").values == [0] * taxi_table.num_rows
        assert replaced.num_columns == taxi_table.num_columns

    def test_with_column_length_mismatch(self, taxi_table):
        with pytest.raises(SchemaError):
            taxi_table.with_column(Column("bad", [1]))

    def test_rename_columns(self, taxi_table):
        renamed = taxi_table.rename_columns({"num_trips": "trips"})
        assert "trips" in renamed
        assert "num_trips" not in renamed

    def test_take(self, taxi_table):
        taken = taxi_table.take([0, 0, 5])
        assert taken.num_rows == 3
        assert taken.column("zipcode").values == ["11201", "11201", "10011"]

    def test_filter(self, taxi_table):
        brooklyn = taxi_table.filter(lambda row: row["zipcode"] == "11201")
        assert brooklyn.num_rows == 3

    def test_drop_nulls(self):
        table = Table.from_dict({"a": [1, None, 3], "b": ["x", "y", None]})
        assert table.drop_nulls().num_rows == 1
        assert table.drop_nulls(["a"]).num_rows == 2

    def test_head(self, taxi_table):
        assert taxi_table.head(2).num_rows == 2

    def test_sample_rows_deterministic(self, taxi_table):
        first = taxi_table.sample_rows(3, random_state=1)
        second = taxi_table.sample_rows(3, random_state=1)
        assert first == second
        assert first.num_rows == 3

    def test_sort_by(self, taxi_table):
        ordered = taxi_table.sort_by("num_trips")
        values = ordered.column("num_trips").values
        assert values == sorted(values)

    def test_sort_by_descending(self, taxi_table):
        ordered = taxi_table.sort_by("num_trips", descending=True)
        values = ordered.column("num_trips").values
        assert values == sorted(values, reverse=True)


class TestGroupBy:
    def test_group_by_avg(self, weather_table):
        aggregated = weather_table.group_by("date", "temp", "avg")
        assert aggregated.num_rows == 4
        mapping = dict(zip(aggregated.column("date"), aggregated.column("temp")))
        assert mapping["2017-01-01"] == pytest.approx((44.1 + 42.0) / 2)

    def test_group_by_count_output_dtype(self, weather_table):
        aggregated = weather_table.group_by(
            "date", "conditions", "count", value_output="n"
        )
        assert aggregated.column("n").dtype is DType.INT

    def test_group_by_drops_null_keys(self):
        table = Table.from_dict({"k": ["a", None, "a"], "v": [1, 2, 3]})
        aggregated = table.group_by("k", "v", "sum")
        assert aggregated.num_rows == 1
        assert aggregated.column("v").values == [4]

    def test_key_frequencies(self, taxi_table):
        frequencies = taxi_table.key_frequencies("zipcode")
        assert frequencies == {"11201": 3, "10011": 3}
