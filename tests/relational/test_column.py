"""Tests for the Column class."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.column import Column
from repro.relational.dtypes import DType


class TestConstruction:
    def test_infers_dtype(self):
        assert Column("a", [1, 2, 3]).dtype is DType.INT
        assert Column("a", [1.5, 2.0]).dtype is DType.FLOAT
        assert Column("a", ["x", "y"]).dtype is DType.STRING

    def test_explicit_dtype_coerces_values(self):
        column = Column("a", ["1", "2"], dtype=DType.INT)
        assert column.values == [1, 2]

    def test_missing_become_none(self):
        column = Column("a", [1, None, "NA", 4])
        assert column.values == [1, None, None, 4]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", [1, 2])

    def test_empty_column_allowed(self):
        column = Column("a", [])
        assert len(column) == 0
        assert column.dtype is DType.MISSING


class TestAccess:
    def test_len_and_iter(self):
        column = Column("a", [10, 20, 30])
        assert len(column) == 3
        assert list(column) == [10, 20, 30]

    def test_indexing(self):
        column = Column("a", [10, 20, 30])
        assert column[1] == 20

    def test_slicing_returns_column(self):
        column = Column("a", [10, 20, 30, 40])
        sliced = column[1:3]
        assert isinstance(sliced, Column)
        assert sliced.values == [20, 30]

    def test_fancy_indexing(self):
        column = Column("a", [10, 20, 30, 40])
        assert column[[0, 3]].values == [10, 40]

    def test_equality(self):
        assert Column("a", [1, 2]) == Column("a", [1, 2])
        assert Column("a", [1, 2]) != Column("b", [1, 2])
        assert Column("a", [1, 2]) != Column("a", [1, 3])


class TestDerivation:
    def test_rename(self):
        column = Column("a", [1, 2]).rename("b")
        assert column.name == "b"
        assert column.values == [1, 2]

    def test_take_with_repeats(self):
        column = Column("a", [10, 20, 30])
        assert column.take([2, 0, 0]).values == [30, 10, 10]

    def test_with_values_keeps_dtype(self):
        column = Column("a", [1.0, 2.0])
        derived = column.with_values([3, 4])
        assert derived.dtype is DType.FLOAT
        assert derived.values == [3.0, 4.0]

    def test_head(self):
        assert Column("a", list(range(10))).head(3).values == [0, 1, 2]


class TestStatistics:
    def test_null_count(self):
        assert Column("a", [1, None, 3, None]).null_count() == 2

    def test_non_null_values(self):
        assert Column("a", [1, None, 3]).non_null_values() == [1, 3]

    def test_distinct_count(self):
        column = Column("a", ["x", "y", "x", None])
        assert column.distinct_count() == 2
        assert column.distinct_count(include_null=True) == 3

    def test_value_counts(self):
        counts = Column("a", ["x", "y", "x"]).value_counts()
        assert counts["x"] == 2
        assert counts["y"] == 1

    def test_is_numeric_and_categorical(self):
        assert Column("a", [1.0]).is_numeric()
        assert not Column("a", [1.0]).is_categorical()
        assert Column("a", ["s"]).is_categorical()


class TestNumpyConversion:
    def test_numeric_to_numpy(self):
        array = Column("a", [1, None, 3]).to_numpy()
        assert array.dtype == np.float64
        assert array[0] == 1.0
        assert np.isnan(array[1])

    def test_string_to_numpy(self):
        array = Column("a", ["x", None]).to_numpy()
        assert array.dtype == object
        assert array[0] == "x"
        assert array[1] is None
