"""Tests for the featurization (join-aggregation) query."""

import pytest

from repro.relational.dtypes import DType
from repro.relational.featurize import augment, featurize
from repro.relational.table import Table


class TestFeaturize:
    def test_produces_unique_keys(self, weather_table):
        aug = featurize(weather_table, "date", "temp", "avg")
        assert aug.num_rows == weather_table.column("date").distinct_count()
        assert aug.column("date").distinct_count() == aug.num_rows

    def test_default_feature_name(self, weather_table):
        aug = featurize(weather_table, "date", "temp", "avg")
        assert "avg_temp" in aug

    def test_custom_feature_name(self, weather_table):
        aug = featurize(weather_table, "date", "temp", "max", feature_name="peak")
        assert "peak" in aug

    def test_count_feature_dtype(self, weather_table):
        aug = featurize(weather_table, "date", "conditions", "count")
        assert aug.column("count_conditions").dtype is DType.INT

    def test_paper_example2(self):
        """Example 2 of the paper, reproduced end to end."""
        train = Table.from_dict({"key": ["a", "a", "b", "c"], "target": [1, 1, 1, 1]})
        cand = Table.from_dict(
            {"key": ["a", "b", "b", "b", "c", "c", "c"], "z": [1, 2, 2, 5, 0, 3, 3]}
        )
        augmented_avg = augment(
            train, cand, base_key="key", candidate_key="key",
            candidate_value="z", agg="avg", feature_name="x",
        )
        assert augmented_avg.column("x").values == [1, 1, 3, 2]

        augmented_mode = augment(
            train, cand, base_key="key", candidate_key="key",
            candidate_value="z", agg="mode", feature_name="x",
        )
        assert augmented_mode.column("x").values == [1, 1, 2, 3]

        augmented_count = augment(
            train, cand, base_key="key", candidate_key="key",
            candidate_value="z", agg="count", feature_name="x",
        )
        assert augmented_count.column("x").values == [1, 1, 3, 3]


class TestAugment:
    def test_row_count_preserved(self, taxi_table, weather_table):
        augmented = augment(
            taxi_table,
            weather_table,
            base_key="date",
            candidate_key="date",
            candidate_value="temp",
            agg="avg",
        )
        assert augmented.num_rows == taxi_table.num_rows

    def test_unmatched_dates_get_missing_feature(self, taxi_table, weather_table):
        augmented = augment(
            taxi_table,
            weather_table,
            base_key="date",
            candidate_key="date",
            candidate_value="temp",
            agg="avg",
        )
        # 2017-01-04 has no weather reading.
        missing_rows = [
            row for row in augmented.iter_rows() if row["date"] == "2017-01-04"
        ]
        assert missing_rows and all(row["avg_temp"] is None for row in missing_rows)

    def test_repeated_base_keys_get_repeated_features(self, taxi_table, weather_table):
        augmented = augment(
            taxi_table,
            weather_table,
            base_key="date",
            candidate_key="date",
            candidate_value="temp",
            agg="avg",
        )
        first_day = [
            row["avg_temp"]
            for row in augmented.iter_rows()
            if row["date"] == "2017-01-01"
        ]
        assert len(first_day) == 2
        assert first_day[0] == first_day[1] == pytest.approx((44.1 + 42.0) / 2)
