"""Tests for aggregation functions and group-by aggregation."""

import pytest

from repro.exceptions import AggregationError
from repro.relational.aggregate import (
    AggregateFunction,
    aggregate_values,
    available_aggregates,
    get_aggregate,
    group_by_aggregate,
    output_dtype,
)
from repro.relational.dtypes import DType


class TestGetAggregate:
    def test_by_name_case_insensitive(self):
        assert get_aggregate("AVG") is AggregateFunction.AVG
        assert get_aggregate("mode") is AggregateFunction.MODE

    def test_by_enum_passthrough(self):
        assert get_aggregate(AggregateFunction.SUM) is AggregateFunction.SUM

    def test_unknown_name_raises(self):
        with pytest.raises(AggregationError):
            get_aggregate("variance")

    def test_non_string_raises(self):
        with pytest.raises(AggregationError):
            get_aggregate(42)

    def test_available_aggregates_contains_core_functions(self):
        names = {agg.value for agg in available_aggregates()}
        assert {"avg", "sum", "count", "min", "max", "mode", "first", "median"} <= names


class TestAggregateValues:
    def test_avg(self):
        assert aggregate_values([1, 2, 2, 5], "avg") == pytest.approx(2.5)

    def test_sum(self):
        assert aggregate_values([1, 2, 3], "sum") == 6

    def test_count_counts_non_missing(self):
        assert aggregate_values([1, None, 3], "count") == 2

    def test_count_empty_group_is_zero(self):
        assert aggregate_values([None, None], "count") == 0

    def test_min_max(self):
        assert aggregate_values([3, 1, 2], "min") == 1
        assert aggregate_values([3, 1, 2], "max") == 3

    def test_median(self):
        assert aggregate_values([1, 5, 2], "median") == pytest.approx(2.0)

    def test_mode_most_frequent(self):
        assert aggregate_values(["a", "b", "b", "c"], "mode") == "b"

    def test_mode_tie_broken_by_first_appearance(self):
        assert aggregate_values(["x", "y", "y", "x"], "mode") == "x"

    def test_first(self):
        assert aggregate_values([None, 7, 8], "first") == 7

    def test_all_missing_yields_none(self):
        assert aggregate_values([None, None], "avg") is None
        assert aggregate_values([], "max") is None

    def test_numeric_only_aggregates_reject_strings(self):
        with pytest.raises(AggregationError):
            aggregate_values(["a", "b"], "avg")

    def test_paper_example2_avg_mode_count(self):
        """Example 2 of the paper: grouped values aggregated with AVG/MODE/COUNT."""
        groups = {"a": [1], "b": [2, 2, 5], "c": [0, 3, 3]}
        assert {k: aggregate_values(v, "avg") for k, v in groups.items()} == {
            "a": 1,
            "b": 3,
            "c": 2,
        }
        assert {k: aggregate_values(v, "mode") for k, v in groups.items()} == {
            "a": 1,
            "b": 2,
            "c": 3,
        }
        assert {k: aggregate_values(v, "count") for k, v in groups.items()} == {
            "a": 1,
            "b": 3,
            "c": 3,
        }

    def test_enum_is_callable(self):
        assert AggregateFunction.SUM([1, 2]) == 3


class TestOutputDtype:
    def test_count_is_int_regardless_of_input(self):
        assert output_dtype("count", DType.STRING) is DType.INT
        assert output_dtype("count", DType.FLOAT) is DType.INT

    def test_avg_is_float(self):
        assert output_dtype("avg", DType.INT) is DType.FLOAT

    def test_mode_preserves_input(self):
        assert output_dtype("mode", DType.STRING) is DType.STRING
        assert output_dtype("mode", DType.FLOAT) is DType.FLOAT

    def test_sum_promotes_int(self):
        assert output_dtype("sum", DType.INT) is DType.INT
        assert output_dtype("sum", DType.FLOAT) is DType.FLOAT


class TestGroupByAggregate:
    def test_basic_grouping(self):
        keys = ["a", "a", "b", "c", "c", "c"]
        values = [1, 3, 10, 2, 4, 6]
        assert group_by_aggregate(keys, values, "avg") == {"a": 2.0, "b": 10.0, "c": 4.0}

    def test_null_keys_dropped(self):
        assert group_by_aggregate([None, "a"], [1, 2], "sum") == {"a": 2}

    def test_insertion_order_preserved(self):
        result = group_by_aggregate(["z", "a", "z"], [1, 2, 3], "count")
        assert list(result.keys()) == ["z", "a"]

    def test_length_mismatch_raises(self):
        with pytest.raises(AggregationError):
            group_by_aggregate(["a"], [1, 2], "sum")
