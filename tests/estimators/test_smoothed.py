"""Tests for the Laplace-smoothed MI estimator."""

import math

import numpy as np
import pytest

from repro.estimators.mle import MLEEstimator
from repro.estimators.smoothed import SmoothedMLEEstimator


class TestSmoothedMLE:
    def test_alpha_zero_matches_plain_mle(self, rng):
        x = rng.integers(0, 5, size=500).tolist()
        y = [(value * 2) % 5 for value in x]
        plain = MLEEstimator().estimate(x, y)
        smoothed = SmoothedMLEEstimator(alpha=0.0).estimate(x, y)
        assert smoothed == pytest.approx(plain, abs=1e-9)

    def test_smoothing_shrinks_spurious_mi(self, rng):
        """On independent data the smoothed estimate is below the plain MLE one."""
        plain_estimates, smoothed_estimates = [], []
        for _ in range(30):
            x = rng.integers(0, 15, size=150).tolist()
            y = rng.integers(0, 15, size=150).tolist()
            plain_estimates.append(MLEEstimator().estimate(x, y))
            smoothed_estimates.append(SmoothedMLEEstimator(alpha=1.0).estimate(x, y))
        assert np.mean(smoothed_estimates) < np.mean(plain_estimates)

    def test_strong_dependence_survives_smoothing(self):
        x = ["a", "b", "c", "d"] * 100
        smoothed = SmoothedMLEEstimator(alpha=0.5).estimate(x, x)
        assert smoothed > 0.8 * math.log(4)

    def test_non_negative(self, rng):
        x = rng.integers(0, 6, size=200).tolist()
        y = rng.integers(0, 6, size=200).tolist()
        assert SmoothedMLEEstimator().estimate(x, y) >= 0.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            SmoothedMLEEstimator(alpha=-0.1)

    def test_string_values_supported(self):
        x = ["red", "blue"] * 50
        y = ["warm", "cold"] * 50
        assert SmoothedMLEEstimator().estimate(x, y) > 0.4
