"""Tests for data-type driven estimator selection."""

import math

import pytest

from repro.estimators.dc_ksg import DCKSGEstimator
from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.estimators.mle import MLEEstimator
from repro.estimators.selection import estimate_mi, estimator_for_kinds, select_estimator
from repro.estimators.base import VariableKind
from repro.relational.dtypes import DType


class TestSelectEstimator:
    def test_string_string_uses_mle(self):
        assert isinstance(select_estimator(DType.STRING, DType.STRING), MLEEstimator)

    def test_numeric_numeric_uses_mixed_ksg(self):
        assert isinstance(select_estimator(DType.FLOAT, DType.INT), MixedKSGEstimator)
        assert isinstance(select_estimator(DType.INT, DType.INT), MixedKSGEstimator)

    def test_mixed_types_use_dc_ksg_with_correct_orientation(self):
        left_discrete = select_estimator(DType.STRING, DType.FLOAT)
        assert isinstance(left_discrete, DCKSGEstimator)
        assert left_discrete.discrete == "x"

        right_discrete = select_estimator(DType.FLOAT, DType.STRING)
        assert isinstance(right_discrete, DCKSGEstimator)
        assert right_discrete.discrete == "y"

    def test_k_is_forwarded(self):
        assert select_estimator(DType.FLOAT, DType.FLOAT, k=7).k == 7

    def test_missing_dtype_treated_as_categorical(self):
        assert isinstance(select_estimator(DType.MISSING, DType.STRING), MLEEstimator)


class TestEstimatorForKinds:
    def test_kind_mapping(self):
        assert isinstance(
            estimator_for_kinds(VariableKind.DISCRETE, VariableKind.DISCRETE),
            MLEEstimator,
        )
        assert isinstance(
            estimator_for_kinds(VariableKind.CONTINUOUS, VariableKind.CONTINUOUS),
            MixedKSGEstimator,
        )


class TestEstimateMi:
    def test_infers_types_from_data(self):
        x = ["a", "b"] * 100
        y = ["u", "v"] * 100
        assert estimate_mi(x, y) == pytest.approx(math.log(2), abs=0.05)

    def test_explicit_estimator_bypasses_dispatch(self, rng):
        x = rng.integers(0, 3, size=300).tolist()
        y = x
        value = estimate_mi(x, y, estimator=MLEEstimator())
        assert value == pytest.approx(math.log(3), abs=0.1)

    def test_explicit_dtypes_override_inference(self, rng):
        x = rng.integers(0, 3, size=500).tolist()
        y = rng.normal(size=500).tolist()
        value = estimate_mi(x, y, x_dtype=DType.STRING, y_dtype=DType.FLOAT)
        assert value == pytest.approx(0.0, abs=0.1)

    def test_numeric_pair_dispatch(self, rng):
        x = rng.normal(size=800)
        y = x + 0.5 * rng.normal(size=800)
        assert estimate_mi(x.tolist(), y.tolist()) > 0.3
