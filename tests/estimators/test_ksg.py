"""Tests for the KSG estimator (continuous/continuous)."""

import math

import numpy as np
import pytest

from repro.exceptions import InsufficientSamplesError
from repro.estimators.ksg import KSGEstimator, marginal_neighbor_counts


def bivariate_normal_mi(correlation: float) -> float:
    """Closed-form MI of a bivariate normal with the given correlation."""
    return -0.5 * math.log(1.0 - correlation**2)


def sample_bivariate_normal(correlation, size, rng):
    x = rng.normal(size=size)
    noise = rng.normal(size=size)
    y = correlation * x + math.sqrt(1 - correlation**2) * noise
    return x, y


class TestMarginalNeighborCounts:
    def test_counts_strictly_within_radius(self):
        values = np.array([0.0, 1.0, 2.0, 10.0])
        radii = np.array([1.5, 1.5, 1.5, 1.5])
        counts = marginal_neighbor_counts(values, radii, strict=True)
        assert counts.tolist() == [1, 2, 1, 0]

    def test_inclusive_counts(self):
        values = np.array([0.0, 1.0, 2.0])
        radii = np.array([1.0, 1.0, 1.0])
        counts = marginal_neighbor_counts(values, radii, strict=False)
        assert counts.tolist() == [1, 2, 1]


class TestKSGEstimator:
    def test_independent_gaussians_near_zero(self, rng):
        x = rng.normal(size=2000)
        y = rng.normal(size=2000)
        assert KSGEstimator(k=3).estimate(x, y) < 0.05

    @pytest.mark.parametrize("correlation", [0.3, 0.6, 0.9])
    def test_recovers_bivariate_normal_mi(self, rng, correlation):
        x, y = sample_bivariate_normal(correlation, 4000, rng)
        estimate = KSGEstimator(k=3).estimate(x, y)
        assert estimate == pytest.approx(bivariate_normal_mi(correlation), abs=0.1)

    def test_invariant_under_affine_transformations(self, rng):
        x, y = sample_bivariate_normal(0.7, 3000, rng)
        estimator = KSGEstimator(k=3)
        base = estimator.estimate(x, y)
        transformed = estimator.estimate(5.0 * x - 2.0, 0.1 * y + 40.0)
        assert transformed == pytest.approx(base, abs=0.05)

    def test_invariant_under_monotone_nonlinear_transform(self, rng):
        """MI is invariant under homeomorphisms (here: exp of one marginal)."""
        x, y = sample_bivariate_normal(0.8, 4000, rng)
        estimator = KSGEstimator(k=3)
        assert estimator.estimate(np.exp(x), y) == pytest.approx(
            estimator.estimate(x, y), abs=0.1
        )

    def test_symmetry(self, rng):
        x, y = sample_bivariate_normal(0.5, 1500, rng)
        estimator = KSGEstimator(k=3)
        assert estimator.estimate(x, y) == pytest.approx(estimator.estimate(y, x), abs=1e-9)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KSGEstimator(k=0)

    def test_too_few_samples_raises(self):
        with pytest.raises(InsufficientSamplesError):
            KSGEstimator(k=5).estimate([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])

    def test_rejects_non_numeric_input(self):
        from repro.exceptions import EstimationError

        with pytest.raises(EstimationError):
            KSGEstimator().estimate(["a", "b", "c", "d", "e", "f"], [1, 2, 3, 4, 5, 6])

    def test_larger_k_still_consistent(self, rng):
        x, y = sample_bivariate_normal(0.6, 4000, rng)
        assert KSGEstimator(k=10).estimate(x, y) == pytest.approx(
            bivariate_normal_mi(0.6), abs=0.12
        )
