"""Tests for tie-breaking perturbation."""

import numpy as np
import pytest

from repro.estimators.perturbation import perturb_ties
from repro.exceptions import EstimationError


class TestPerturbTies:
    def test_breaks_all_ties(self, rng):
        values = np.repeat([1.0, 2.0, 3.0], 100)
        perturbed = perturb_ties(values, random_state=rng)
        assert len(np.unique(perturbed)) == len(values)

    def test_perturbation_is_negligible(self, rng):
        values = rng.normal(size=1000)
        perturbed = perturb_ties(values, random_state=rng)
        assert np.max(np.abs(perturbed - values)) < 1e-6 * np.std(values)

    def test_preserves_mi_structure(self, rng):
        """Perturbation must not change MI appreciably (Section V-A of the paper)."""
        from repro.estimators.ksg import KSGEstimator

        x = rng.integers(0, 20, size=3000).astype(float)
        y = x + rng.normal(size=3000)
        baseline = KSGEstimator().estimate(perturb_ties(x, random_state=1), y)
        repeat = KSGEstimator().estimate(perturb_ties(x, random_state=2), y)
        assert baseline == pytest.approx(repeat, abs=0.05)

    def test_constant_input_still_perturbed(self):
        perturbed = perturb_ties(np.zeros(50), random_state=3)
        assert len(np.unique(perturbed)) == 50

    def test_deterministic_given_seed(self):
        values = np.array([1.0, 1.0, 2.0])
        assert np.array_equal(
            perturb_ties(values, random_state=7), perturb_ties(values, random_state=7)
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            perturb_ties([1.0, 2.0], relative_scale=0.0)

    def test_non_numeric_rejected(self):
        with pytest.raises(EstimationError):
            perturb_ties(["a", "b"])
