"""Tests for the DC-KSG (Ross 2014) discrete/continuous estimator."""

import math

import numpy as np
import pytest

from repro.exceptions import InsufficientSamplesError
from repro.estimators.dc_ksg import DCKSGEstimator
from repro.synthetic.cdunif import cdunif_true_mi, sample_cdunif


class TestAccuracy:
    def test_independent_variables_near_zero(self, rng):
        x = rng.integers(0, 4, size=3000)
        y = rng.normal(size=3000)
        assert DCKSGEstimator(k=3).estimate(x, y) < 0.05

    def test_well_separated_clusters_reach_label_entropy(self, rng):
        """When the continuous value identifies the label, I = H(label) = log 3."""
        labels = rng.integers(0, 3, size=3000)
        y = labels * 100.0 + rng.normal(size=3000)
        estimate = DCKSGEstimator(k=3).estimate(labels, y)
        assert estimate == pytest.approx(math.log(3), abs=0.1)

    def test_cdunif_ground_truth(self, rng):
        m = 8
        x, y = sample_cdunif(m, 6000, random_state=rng)
        estimate = DCKSGEstimator(k=3).estimate(x, y)
        assert estimate == pytest.approx(cdunif_true_mi(m), abs=0.15)

    def test_partial_overlap_intermediate_mi(self, rng):
        """Overlapping clusters should give MI strictly between 0 and H(label)."""
        labels = rng.integers(0, 2, size=4000)
        y = labels * 1.0 + rng.normal(size=4000)
        estimate = DCKSGEstimator(k=3).estimate(labels, y)
        assert 0.05 < estimate < math.log(2)


class TestOrientation:
    def test_discrete_side_configurable(self, rng):
        labels = rng.integers(0, 3, size=2000)
        y = labels * 10.0 + rng.normal(size=2000)
        x_discrete = DCKSGEstimator(k=3, discrete="x").estimate(labels, y)
        y_discrete = DCKSGEstimator(k=3, discrete="y").estimate(y, labels)
        assert x_discrete == pytest.approx(y_discrete, abs=1e-9)

    def test_invalid_orientation_rejected(self):
        with pytest.raises(ValueError):
            DCKSGEstimator(discrete="z")


class TestDegenerateCases:
    def test_all_singleton_labels_return_degenerate_value(self, rng):
        labels = np.arange(100)  # every label unique
        y = rng.normal(size=100)
        assert DCKSGEstimator(k=3).estimate(labels, y) == 0.0

    def test_all_singleton_labels_can_raise_instead(self, rng):
        labels = np.arange(100)
        y = rng.normal(size=100)
        estimator = DCKSGEstimator(k=3, degenerate_value=None)
        with pytest.raises(InsufficientSamplesError):
            estimator.estimate(labels, y)

    def test_single_label_gives_zero(self, rng):
        labels = np.zeros(500, dtype=int)
        y = rng.normal(size=500)
        assert DCKSGEstimator(k=3).estimate(labels, y) == pytest.approx(0.0, abs=0.05)

    def test_string_labels_supported(self, rng):
        labels = ["hot" if value > 0 else "cold" for value in rng.normal(size=2000)]
        y = [100.0 if label == "hot" else -100.0 for label in labels]
        y = np.asarray(y) + rng.normal(size=2000)
        estimate = DCKSGEstimator(k=3).estimate(labels, y)
        assert estimate > 0.5

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            DCKSGEstimator(k=0)
