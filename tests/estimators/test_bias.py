"""Tests for the analytic bias formulas (Eq. 6 of the paper)."""

import numpy as np
import pytest

from repro.estimators.bias import miller_madow_correction, mle_mi_bias
from repro.estimators.mle import MLEEstimator


class TestMleMiBias:
    def test_formula_value(self):
        # (m_X + m_Y - m_XY - 1) / (2N)
        assert mle_mi_bias(10, 10, 50, 100) == pytest.approx((10 + 10 - 50 - 1) / 200)

    def test_negative_for_rich_joint_support(self):
        """More joint than marginal support -> the MLE over-estimates MI."""
        assert mle_mi_bias(10, 10, 100, 500) < 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            mle_mi_bias(1, 1, 1, 0)
        with pytest.raises(ValueError):
            mle_mi_bias(0, 1, 1, 10)


class TestMillerMadowCorrection:
    def test_correction_sign_for_independent_data(self, rng):
        x = rng.integers(0, 20, size=300).tolist()
        y = rng.integers(0, 20, size=300).tolist()
        # Independent data has joint support richer than marginals: correction > 0,
        # so subtracting it reduces the (over-)estimate.
        assert miller_madow_correction(x, y) > 0

    def test_corrected_estimate_less_biased(self, rng):
        """Subtracting the correction moves the average estimate toward 0 (truth)."""
        raw, corrected = [], []
        for _ in range(100):
            x = rng.integers(0, 12, size=150).tolist()
            y = rng.integers(0, 12, size=150).tolist()
            estimate = MLEEstimator(clip_negative=False).estimate(x, y)
            raw.append(estimate)
            corrected.append(estimate - miller_madow_correction(x, y))
        assert abs(np.mean(corrected)) < abs(np.mean(raw))

    def test_aligned_inputs_required(self):
        with pytest.raises(ValueError):
            miller_madow_correction([1], [1, 2])
        with pytest.raises(ValueError):
            miller_madow_correction([], [])
