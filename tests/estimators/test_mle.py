"""Tests for the plug-in (MLE) MI estimator."""

import math

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.estimators.mle import MLEEstimator


class TestBasicBehaviour:
    def test_identical_variables_equal_entropy(self):
        values = ["a", "b", "c", "d"] * 25
        estimator = MLEEstimator()
        mi = estimator.estimate(values, values)
        assert mi == pytest.approx(math.log(4))

    def test_independent_variables_near_zero(self, rng):
        x = rng.integers(0, 4, size=5000).tolist()
        y = rng.integers(0, 4, size=5000).tolist()
        assert MLEEstimator().estimate(x, y) < 0.02

    def test_deterministic_bijection_preserves_mi(self):
        x = ["a", "b", "c", "a", "b", "c"] * 20
        y_mapped = [{"a": "Z", "b": "Y", "c": "X"}[value] for value in x]
        estimator = MLEEstimator()
        assert estimator.estimate(x, y_mapped) == pytest.approx(
            estimator.estimate(x, x)
        )

    def test_symmetry(self, rng):
        x = rng.integers(0, 5, size=500).tolist()
        y = [(value + int(rng.integers(0, 2))) % 5 for value in x]
        estimator = MLEEstimator()
        assert estimator.estimate(x, y) == pytest.approx(estimator.estimate(y, x))

    def test_non_negative(self, rng):
        for _ in range(10):
            x = rng.integers(0, 10, size=100).tolist()
            y = rng.integers(0, 10, size=100).tolist()
            assert MLEEstimator().estimate(x, y) >= 0.0

    def test_missing_pairs_dropped(self):
        x = ["a", None, "b", "a"]
        y = [1, 2, None, 1]
        # Only the pairs (a, 1) and (a, 1) survive -> MI of constants = 0.
        assert MLEEstimator().estimate(x, y) == pytest.approx(0.0)

    def test_misaligned_inputs_raise(self):
        with pytest.raises(EstimationError):
            MLEEstimator().estimate(["a"], ["b", "c"])


class TestBiasBehaviour:
    def test_overestimates_mi_of_independent_data_with_many_levels(self, rng):
        """The classic MLE bias: spurious MI grows with the number of levels."""
        estimates = []
        for _ in range(50):
            x = rng.integers(0, 30, size=200).tolist()
            y = rng.integers(0, 30, size=200).tolist()
            estimates.append(MLEEstimator().estimate(x, y))
        assert np.mean(estimates) > 0.5  # true MI is 0

    def test_miller_madow_reduces_bias(self, rng):
        plain_estimator = MLEEstimator()
        corrected_estimator = MLEEstimator(miller_madow=True)
        plain, corrected = [], []
        for _ in range(50):
            x = rng.integers(0, 20, size=200).tolist()
            y = rng.integers(0, 20, size=200).tolist()
            plain.append(plain_estimator.estimate(x, y))
            corrected.append(corrected_estimator.estimate(x, y))
        assert np.mean(corrected) < np.mean(plain)

    def test_clip_negative_default(self, rng):
        estimator = MLEEstimator(miller_madow=True)
        x = rng.integers(0, 3, size=2000).tolist()
        y = rng.integers(0, 3, size=2000).tolist()
        assert estimator.estimate(x, y) >= 0.0


class TestAgainstAnalyticDistributions:
    def test_recovers_trinomial_mi_on_large_samples(self):
        from repro.synthetic.trinomial import sample_trinomial, trinomial_true_mi

        m, p1, p2 = 32, 0.3, 0.4
        x, y = sample_trinomial(m, p1, p2, 20_000, random_state=11)
        estimate = MLEEstimator().estimate(x.tolist(), y.tolist())
        assert estimate == pytest.approx(trinomial_true_mi(m, p1, p2), abs=0.06)
