"""Tests for subsampling-based MI confidence intervals."""

import numpy as np
import pytest

from repro.estimators.confidence import (
    estimate_mi_with_confidence,
    subsampled_estimates,
)
from repro.estimators.mle import MLEEstimator
from repro.exceptions import InsufficientSamplesError
from repro.synthetic.trinomial import sample_trinomial, trinomial_true_mi


class TestSubsampledEstimates:
    def test_shape_and_range(self, rng):
        x = rng.integers(0, 4, size=400).tolist()
        y = rng.integers(0, 4, size=400).tolist()
        estimates = subsampled_estimates(
            x, y, MLEEstimator(), subsample_size=100, replicates=10, random_state=rng
        )
        assert estimates.shape == (10,)
        assert np.all(estimates >= 0.0)

    def test_validation(self, rng):
        x = rng.integers(0, 4, size=50).tolist()
        with pytest.raises(ValueError):
            subsampled_estimates(x, x, MLEEstimator(), subsample_size=1000)
        with pytest.raises(ValueError):
            subsampled_estimates(x, x, MLEEstimator(), subsample_size=10, replicates=1)
        with pytest.raises(ValueError):
            subsampled_estimates(x, x[:-1], MLEEstimator(), subsample_size=10)


class TestEstimateMiWithConfidence:
    def test_interval_contains_point_estimate(self, rng):
        x = rng.integers(0, 5, size=600).tolist()
        y = [(value + int(rng.integers(0, 2))) % 5 for value in x]
        interval = estimate_mi_with_confidence(x, y, random_state=rng)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.width >= 0.0
        assert interval.sample_size == 600

    def test_interval_covers_truth_on_known_distribution(self):
        m, p1, p2 = 16, 0.3, 0.4
        true_mi = trinomial_true_mi(m, p1, p2)
        covered = 0
        for seed in range(10):
            x, y = sample_trinomial(m, p1, p2, 2500, random_state=seed)
            interval = estimate_mi_with_confidence(
                x.tolist(), y.tolist(), estimator=MLEEstimator(), random_state=seed
            )
            covered += interval.contains(true_mi)
        assert covered >= 7  # 95% nominal coverage, allow sampling slack

    def test_interval_tightens_with_more_data(self, rng):
        m, p1, p2 = 16, 0.3, 0.4
        x_small, y_small = sample_trinomial(m, p1, p2, 300, random_state=1)
        x_large, y_large = sample_trinomial(m, p1, p2, 6000, random_state=1)
        small = estimate_mi_with_confidence(
            x_small.tolist(), y_small.tolist(), estimator=MLEEstimator(), random_state=2
        )
        large = estimate_mi_with_confidence(
            x_large.tolist(), y_large.tolist(), estimator=MLEEstimator(), random_state=2
        )
        assert large.width < small.width

    def test_estimator_autoselection(self, rng):
        x = rng.normal(size=300)
        y = x + rng.normal(size=300)
        interval = estimate_mi_with_confidence(x.tolist(), y.tolist(), random_state=3)
        assert interval.estimator == "Mixed-KSG"
        assert interval.estimate > 0.2

    def test_lower_bound_never_negative(self, rng):
        x = rng.integers(0, 3, size=200).tolist()
        y = rng.integers(0, 3, size=200).tolist()
        interval = estimate_mi_with_confidence(x, y, random_state=4)
        assert interval.lower >= 0.0

    def test_validation(self, rng):
        x = rng.integers(0, 3, size=100).tolist()
        with pytest.raises(ValueError):
            estimate_mi_with_confidence(x, x, confidence=1.5)
        with pytest.raises(ValueError):
            estimate_mi_with_confidence(x, x, subsample_fraction=0.0)
        with pytest.raises(InsufficientSamplesError):
            estimate_mi_with_confidence([1, 2], [1, 2])
