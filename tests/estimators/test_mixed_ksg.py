"""Tests for the Mixed-KSG estimator (discrete-continuous mixtures)."""

import math

import numpy as np
import pytest

from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.synthetic.cdunif import cdunif_true_mi, sample_cdunif


class TestContinuousBehaviour:
    def test_matches_bivariate_normal_mi(self, rng):
        correlation = 0.7
        x = rng.normal(size=4000)
        y = correlation * x + math.sqrt(1 - correlation**2) * rng.normal(size=4000)
        expected = -0.5 * math.log(1 - correlation**2)
        assert MixedKSGEstimator(k=3).estimate(x, y) == pytest.approx(expected, abs=0.1)

    def test_independent_near_zero(self, rng):
        x = rng.normal(size=2000)
        y = rng.normal(size=2000)
        assert MixedKSGEstimator().estimate(x, y) < 0.05


class TestMixtureBehaviour:
    def test_handles_heavy_ties_without_crashing(self, rng):
        """Repeated values (post-left-join mixtures) must not break the estimator."""
        x = np.repeat(rng.normal(size=50), 20)  # 50 distinct values, 20 copies each
        y = x + 0.1 * rng.normal(size=x.size)
        estimate = MixedKSGEstimator().estimate(x, y)
        assert np.isfinite(estimate)
        assert estimate > 0.5

    def test_identical_discrete_variables(self, rng):
        """For X == Y discrete-uniform over 8 values, I(X,Y) = H(X) = log 8."""
        x = rng.integers(0, 8, size=4000).astype(float)
        estimate = MixedKSGEstimator(k=3).estimate(x, x)
        assert estimate == pytest.approx(math.log(8), abs=0.15)

    def test_cdunif_ground_truth(self, rng):
        """The Gao et al. benchmark distribution with closed-form MI."""
        m = 10
        x, y = sample_cdunif(m, 5000, random_state=rng)
        estimate = MixedKSGEstimator(k=3).estimate(x.astype(float), y)
        assert estimate == pytest.approx(cdunif_true_mi(m), abs=0.15)

    def test_string_values_fall_back_to_codes(self):
        x = ["a", "b", "a", "b"] * 100
        y = [1.0, 2.0, 1.0, 2.0] * 100
        estimate = MixedKSGEstimator().estimate(x, y)
        assert estimate == pytest.approx(math.log(2), abs=0.1)


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            MixedKSGEstimator(k=0)

    def test_non_negative_output(self, rng):
        for _ in range(5):
            x = rng.normal(size=200)
            y = rng.normal(size=200)
            assert MixedKSGEstimator().estimate(x, y) >= 0.0
