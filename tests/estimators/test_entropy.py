"""Tests for the entropy estimators."""

import math

import numpy as np
import pytest

from repro.exceptions import EstimationError, InsufficientSamplesError
from repro.estimators.entropy import (
    entropy_knn,
    entropy_laplace,
    entropy_mle,
    entropy_mle_from_counts,
    entropy_miller_madow,
    joint_entropy_mle,
)


class TestEntropyMLE:
    def test_uniform_two_outcomes(self):
        assert entropy_mle(["a", "b"] * 50) == pytest.approx(math.log(2))

    def test_uniform_k_outcomes(self):
        values = list(range(8)) * 25
        assert entropy_mle(values) == pytest.approx(math.log(8))

    def test_constant_has_zero_entropy(self):
        assert entropy_mle(["same"] * 100) == pytest.approx(0.0)

    def test_from_counts_matches_values(self):
        values = ["a"] * 30 + ["b"] * 10
        assert entropy_mle(values) == pytest.approx(entropy_mle_from_counts([30, 10]))

    def test_from_counts_ignores_zeros(self):
        assert entropy_mle_from_counts([5, 0, 5]) == pytest.approx(math.log(2))

    def test_empty_raises(self):
        with pytest.raises(InsufficientSamplesError):
            entropy_mle([])
        with pytest.raises(EstimationError):
            entropy_mle_from_counts([])

    def test_downward_bias_on_small_samples(self, rng):
        """The plug-in estimator underestimates the true entropy on average."""
        true_entropy = math.log(16)
        estimates = [
            entropy_mle(rng.integers(0, 16, size=30).tolist()) for _ in range(200)
        ]
        assert np.mean(estimates) < true_entropy


class TestMillerMadow:
    def test_correction_is_positive(self):
        values = ["a", "b", "c", "a"]
        assert entropy_miller_madow(values) > entropy_mle(values)

    def test_correction_magnitude(self):
        values = ["a", "b", "c", "a"]  # K=3, N=4 -> correction = 2/8
        assert entropy_miller_madow(values) == pytest.approx(entropy_mle(values) + 0.25)

    def test_reduces_bias(self, rng):
        true_entropy = math.log(16)
        plain, corrected = [], []
        for _ in range(200):
            sample = rng.integers(0, 16, size=40).tolist()
            plain.append(entropy_mle(sample))
            corrected.append(entropy_miller_madow(sample))
        assert abs(np.mean(corrected) - true_entropy) < abs(np.mean(plain) - true_entropy)


class TestLaplaceEntropy:
    def test_alpha_zero_matches_mle(self):
        values = ["a", "a", "b"]
        assert entropy_laplace(values, alpha=0.0) == pytest.approx(entropy_mle(values))

    def test_smoothing_pushes_toward_uniform(self):
        values = ["a"] * 90 + ["b"] * 10
        assert entropy_laplace(values, alpha=50.0) > entropy_mle(values)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            entropy_laplace(["a"], alpha=-1.0)


class TestJointEntropy:
    def test_independent_joint_is_sum(self):
        x = ["a", "a", "b", "b"] * 25
        y = ["p", "q", "p", "q"] * 25
        assert joint_entropy_mle(x, y) == pytest.approx(entropy_mle(x) + entropy_mle(y))

    def test_identical_variables_joint_equals_marginal(self):
        x = ["a", "b", "c"] * 10
        assert joint_entropy_mle(x, x) == pytest.approx(entropy_mle(x))

    def test_misaligned_raises(self):
        with pytest.raises(EstimationError):
            joint_entropy_mle(["a"], ["b", "c"])


class TestKnnEntropy:
    def test_uniform_distribution(self, rng):
        """Differential entropy of Uniform(0, 1) is 0."""
        sample = rng.uniform(0.0, 1.0, size=4000)
        assert entropy_knn(sample, k=3) == pytest.approx(0.0, abs=0.08)

    def test_scaled_uniform(self, rng):
        """Differential entropy of Uniform(0, 4) is log(4)."""
        sample = rng.uniform(0.0, 4.0, size=4000)
        assert entropy_knn(sample, k=3) == pytest.approx(math.log(4.0), abs=0.08)

    def test_gaussian(self, rng):
        """Differential entropy of N(0, 1) is 0.5 * log(2 * pi * e)."""
        sample = rng.normal(0.0, 1.0, size=4000)
        expected = 0.5 * math.log(2 * math.pi * math.e)
        assert entropy_knn(sample, k=3) == pytest.approx(expected, abs=0.08)

    def test_too_few_samples_raises(self):
        with pytest.raises(InsufficientSamplesError):
            entropy_knn([1.0, 2.0], k=3)
