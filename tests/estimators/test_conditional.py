"""Tests for conditional mutual information and discretization."""

import math

import pytest

from repro.estimators.conditional import (
    conditional_mutual_information,
    discretize_equal_width,
)
from repro.estimators.mle import MLEEstimator
from repro.exceptions import EstimationError


class TestDiscretizeEqualWidth:
    def test_number_of_bins_respected(self, rng):
        values = rng.normal(size=1000).tolist()
        labels = discretize_equal_width(values, bins=8)
        assert len(set(labels)) <= 8

    def test_constant_column(self):
        assert set(discretize_equal_width([3.0, 3.0, 3.0], bins=4)) == {0}

    def test_strings_passed_through(self):
        values = ["a", "b", "a"]
        assert discretize_equal_width(values) == values

    def test_missing_values_get_sentinel(self):
        labels = discretize_equal_width([1.0, None, 2.0], bins=4)
        assert labels[1] == "__missing__"

    def test_monotone_mapping(self, rng):
        values = sorted(rng.normal(size=200).tolist())
        labels = discretize_equal_width(values, bins=10)
        assert labels == sorted(labels)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            discretize_equal_width([1.0], bins=0)


class TestConditionalMutualInformation:
    def test_without_conditioning_matches_mle(self, rng):
        x = rng.integers(0, 4, size=500).tolist()
        y = [(value * 3) % 4 for value in x]
        assert conditional_mutual_information(x, y) == pytest.approx(
            MLEEstimator().estimate(x, y), abs=1e-9
        )

    def test_conditioning_on_the_explanation_removes_dependence(self, rng):
        """X and Y depend only through Z: I(X;Y|Z) should be ~0 while I(X;Y) > 0."""
        z = rng.integers(0, 2, size=4000)
        x = [int(value) for value in z]
        y = [int(value) for value in z]
        unconditional = conditional_mutual_information(x, y)
        conditional = conditional_mutual_information(x, y, z.tolist())
        assert unconditional == pytest.approx(math.log(2), abs=0.05)
        assert conditional < 0.02

    def test_conditioning_on_irrelevant_variable_keeps_mi(self, rng):
        x = rng.integers(0, 3, size=3000).tolist()
        y = list(x)
        z = rng.integers(0, 2, size=3000).tolist()  # independent of both
        conditional = conditional_mutual_information(x, y, z)
        assert conditional == pytest.approx(math.log(3), abs=0.05)

    def test_synergy_detected(self, rng):
        """XOR: pairwise independent but conditionally fully dependent."""
        x = rng.integers(0, 2, size=5000)
        z = rng.integers(0, 2, size=5000)
        y = (x ^ z).tolist()
        assert conditional_mutual_information(x.tolist(), y) < 0.02
        assert conditional_mutual_information(x.tolist(), y, z.tolist()) == pytest.approx(
            math.log(2), abs=0.05
        )

    def test_non_negative(self, rng):
        for _ in range(5):
            x = rng.integers(0, 5, size=200).tolist()
            y = rng.integers(0, 5, size=200).tolist()
            z = rng.integers(0, 3, size=200).tolist()
            assert conditional_mutual_information(x, y, z) >= 0.0

    def test_misaligned_inputs(self):
        with pytest.raises(EstimationError):
            conditional_mutual_information([1, 2], [1])
        with pytest.raises(EstimationError):
            conditional_mutual_information([1, 2], [1, 2], [1])
