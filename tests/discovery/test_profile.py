"""Tests for column-pair profiling."""

import pytest

from repro.discovery.profile import profile_column_pair
from repro.relational.dtypes import DType
from repro.relational.table import Table


class TestProfileColumnPair:
    def test_basic_statistics(self, taxi_table):
        profile = profile_column_pair(taxi_table, "zipcode", "num_trips")
        assert profile.table_name == "taxi"
        assert profile.num_rows == 6
        assert profile.key_distinct == 2
        assert profile.key_nulls == 0
        assert profile.value_dtype is DType.INT
        assert profile.value_distinct == 6

    def test_null_counts(self):
        table = Table.from_dict({"k": ["a", None, "b"], "v": [1.0, None, None]}, name="t")
        profile = profile_column_pair(table, "k", "v")
        assert profile.key_nulls == 1
        assert profile.value_nulls == 2

    def test_key_uniqueness(self, demographics_table, taxi_table):
        unique = profile_column_pair(demographics_table, "zipcode", "population")
        repeated = profile_column_pair(taxi_table, "zipcode", "num_trips")
        assert unique.key_uniqueness == pytest.approx(1.0)
        assert repeated.key_uniqueness == pytest.approx(2 / 6)

    def test_key_uniqueness_all_null(self):
        table = Table.from_dict({"k": [None, None], "v": [1, 2]}, name="t")
        assert profile_column_pair(table, "k", "v").key_uniqueness == 0.0
