"""Tests for greedy MI-based feature selection."""

import pytest

from repro.discovery.selection import greedy_feature_selection
from repro.exceptions import DiscoveryError


@pytest.fixture()
def feature_world(rng):
    """Target driven by two complementary signals plus a redundant copy and noise."""
    n = 3000
    signal_a = rng.normal(size=n)
    signal_b = rng.normal(size=n)
    target = signal_a + signal_b + 0.2 * rng.normal(size=n)
    features = {
        "signal_a": signal_a.tolist(),
        "signal_a_copy": (signal_a + 0.01 * rng.normal(size=n)).tolist(),
        "signal_b": signal_b.tolist(),
        "noise": rng.normal(size=n).tolist(),
    }
    return features, target.tolist()


class TestGreedyFeatureSelection:
    def test_selects_complementary_signals_before_redundant_copy(self, feature_world):
        features, target = feature_world
        selected = greedy_feature_selection(features, target, k=2)
        names = [feature.name for feature in selected]
        assert set(names) == {"signal_a", "signal_b"} or set(names) == {
            "signal_a_copy",
            "signal_b",
        }

    def test_noise_not_selected_before_signals(self, feature_world):
        features, target = feature_world
        selected = greedy_feature_selection(features, target, k=3)
        names = [feature.name for feature in selected]
        assert "noise" not in names[:2]

    def test_first_pick_maximizes_relevance(self, feature_world):
        """The first pick is unconditioned, so its gain equals its relevance and
        is the maximum relevance among all candidates."""
        features, target = feature_world
        selected = greedy_feature_selection(features, target, k=4, min_gain=-1.0)
        first = selected[0]
        assert first.gain == pytest.approx(first.relevance, abs=1e-9)
        assert all(first.relevance >= feature.relevance - 1e-9 for feature in selected)

    def test_ranks_sequential(self, feature_world):
        features, target = feature_world
        selected = greedy_feature_selection(features, target, k=3)
        assert [feature.rank for feature in selected] == list(range(1, len(selected) + 1))

    def test_k_limits_output(self, feature_world):
        features, target = feature_world
        assert len(greedy_feature_selection(features, target, k=1)) == 1

    def test_min_gain_stops_early(self, rng):
        n = 2000
        target = rng.normal(size=n).tolist()
        features = {
            "noise_1": rng.normal(size=n).tolist(),
            "noise_2": rng.normal(size=n).tolist(),
        }
        selected = greedy_feature_selection(features, target, k=2, min_gain=0.05)
        assert selected == []

    def test_categorical_features_supported(self, rng):
        n = 2000
        labels = rng.integers(0, 3, size=n)
        target = labels * 10.0 + rng.normal(size=n)
        features = {
            "label": [f"cat_{value}" for value in labels],
            "noise": rng.normal(size=n).tolist(),
        }
        selected = greedy_feature_selection(features, target.tolist(), k=1)
        assert selected[0].name == "label"

    def test_validation(self, rng):
        with pytest.raises(DiscoveryError):
            greedy_feature_selection({}, [1, 2, 3])
        with pytest.raises(DiscoveryError):
            greedy_feature_selection({"a": [1, 2]}, [1, 2, 3])
        with pytest.raises(ValueError):
            greedy_feature_selection({"a": [1, 2, 3]}, [1, 2, 3], k=0)


class TestEdgeCases:
    def test_empty_candidate_set_error_is_descriptive(self):
        with pytest.raises(DiscoveryError, match="no candidate features"):
            greedy_feature_selection({}, [1.0, 2.0, 3.0])

    def test_misalignment_error_names_the_lengths(self):
        with pytest.raises(DiscoveryError, match="3 rows"):
            greedy_feature_selection({"a": [1.0, 2.0]}, [1.0, 2.0, 3.0])

    def test_k_larger_than_feature_count_returns_all_useful_features(self, rng):
        n = 2000
        signal = rng.normal(size=n)
        target = (signal + 0.1 * rng.normal(size=n)).tolist()
        selected = greedy_feature_selection(
            {"signal": signal.tolist()}, target, k=50, min_gain=-1.0
        )
        assert [feature.name for feature in selected] == ["signal"]

    def test_constant_target_selects_nothing(self, rng):
        """A constant target carries no information: every conditional-MI
        gain is zero, so the default min_gain of 0.0 stops immediately."""
        n = 500
        features = {"a": rng.normal(size=n).tolist(), "b": rng.normal(size=n).tolist()}
        assert greedy_feature_selection(features, [1.0] * n, k=2) == []

    def test_single_row_columns(self):
        """Degenerate one-row input must not crash (gain is zero, nothing
        selected under the default min_gain)."""
        assert greedy_feature_selection({"a": [1.0]}, [2.0], k=1) == []

    def test_tied_features_picked_in_sorted_name_order(self, rng):
        """Exact duplicates have identical gains; the deterministic
        tie-break is lexicographic feature name."""
        n = 2000
        signal = rng.normal(size=n)
        target = (signal + 0.05 * rng.normal(size=n)).tolist()
        column = signal.tolist()
        selected = greedy_feature_selection(
            {"twin_b": column, "twin_a": column}, target, k=1
        )
        assert selected[0].name == "twin_a"
