"""Tests for the sketch index and MI-based augmentation queries."""

import numpy as np
import pytest

from repro.discovery.index import SketchIndex
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.exceptions import DiscoveryError
from repro.relational.table import Table


def build_corpus(num_keys=600, seed=0):
    """A base table plus candidates with known relevance ordering.

    ``strong`` is a noisy copy of the target (high MI), ``weak`` is mostly
    noise (low MI), ``unrelated`` uses disjoint keys (not joinable).
    """
    rng = np.random.default_rng(seed)
    keys = [f"id{i:05d}" for i in range(num_keys)]
    target = rng.normal(size=num_keys)
    base = Table.from_dict({"key": keys, "target": target.tolist()}, name="base")

    strong = Table.from_dict(
        {"key": keys, "signal": (target + 0.2 * rng.normal(size=num_keys)).tolist()},
        name="strong",
    )
    weak = Table.from_dict(
        {"key": keys, "noise": (0.2 * target + rng.normal(size=num_keys)).tolist()},
        name="weak",
    )
    unrelated = Table.from_dict(
        {"key": [f"zz{i}" for i in range(num_keys)], "value": rng.normal(size=num_keys).tolist()},
        name="unrelated",
    )
    return base, strong, weak, unrelated


class TestConstruction:
    def test_from_engine(self):
        engine = SketchEngine(EngineConfig(method="CSK", capacity=64, seed=3))
        index = SketchIndex(engine)
        assert index.engine is engine
        assert (index.method, index.capacity, index.seed) == ("CSK", 64, 3)

    def test_from_config(self):
        index = SketchIndex(EngineConfig(capacity=128, seed=9))
        assert index.config == EngineConfig(capacity=128, seed=9)

    def test_default_matches_legacy_defaults(self):
        index = SketchIndex()
        assert (index.method, index.capacity, index.seed) == ("TUPSK", 1024, 0)

    def test_legacy_kwargs_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match=r"EngineConfig\(method="):
            index = SketchIndex(method="CSK", capacity=64, seed=3)
        assert (index.method, index.capacity, index.seed) == ("CSK", 64, 3)

    def test_deprecation_warning_names_replacement_api(self):
        """The warning must tell callers what to use instead."""
        with pytest.warns(DeprecationWarning) as captured:
            SketchIndex(method="CSK", capacity=64, seed=3)
        messages = [str(warning.message) for warning in captured]
        assert any("SketchIndex(EngineConfig(" in message for message in messages)
        assert any("SketchEngine" in message for message in messages)

    def test_legacy_positional_method_string(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            index = SketchIndex("CSK")
        assert index.method == "CSK"
        assert index.capacity == 1024

    def test_legacy_fully_positional_signature(self):
        with pytest.warns(DeprecationWarning, match=r"EngineConfig\(method="):
            index = SketchIndex("CSK", 512, 7)
        assert (index.method, index.capacity, index.seed) == ("CSK", 512, 7)

    def test_positional_args_without_method_string_rejected(self):
        engine = SketchEngine(EngineConfig())
        with pytest.raises(TypeError):
            SketchIndex(engine, 512)
        with pytest.raises(TypeError):
            SketchIndex("CSK", 512, 7, 9)

    def test_positional_and_keyword_conflicts_rejected(self):
        with pytest.raises(TypeError):
            SketchIndex("CSK", 512, capacity=64)
        with pytest.raises(TypeError):
            SketchIndex("CSK", 512, 7, seed=1)
        with pytest.raises(TypeError):
            SketchIndex("CSK", method="TUPSK")

    def test_engine_and_legacy_kwargs_conflict(self):
        engine = SketchEngine(EngineConfig())
        with pytest.raises(DiscoveryError):
            SketchIndex(engine, capacity=64)

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(DiscoveryError):
            SketchIndex(config=EngineConfig(), seed=1)


class TestIndexing:
    def test_add_candidate_defaults(self, demographics_table):
        index = SketchIndex(capacity=64)
        entry = index.add_candidate(demographics_table, "zipcode", "population")
        assert entry.aggregate == "avg"  # numeric -> AVG
        assert len(index) == 1

    def test_add_candidate_mode_for_strings(self, demographics_table):
        index = SketchIndex(capacity=64)
        entry = index.add_candidate(demographics_table, "zipcode", "borough")
        assert entry.aggregate == "mode"

    def test_add_table_indexes_all_value_columns(self, demographics_table):
        index = SketchIndex(capacity=64)
        added = index.add_table(demographics_table, key_columns=["zipcode"])
        assert len(added) == 2  # borough and population
        assert len(index) == 2

    def test_reindexing_overwrites(self, demographics_table):
        index = SketchIndex(capacity=64)
        index.add_candidate(demographics_table, "zipcode", "population")
        index.add_candidate(demographics_table, "zipcode", "population")
        assert len(index) == 1

    def test_get_unknown_candidate(self):
        index = SketchIndex()
        with pytest.raises(DiscoveryError):
            index.get("nope")


class TestQueries:
    @pytest.fixture(scope="class")
    def corpus(self):
        base, strong, weak, unrelated = build_corpus()
        index = SketchIndex(method="TUPSK", capacity=256, seed=0)
        index.add_candidate(strong, "key", "signal")
        index.add_candidate(weak, "key", "noise")
        index.add_candidate(unrelated, "key", "value")
        return base, index

    def test_ranking_prefers_informative_candidate(self, corpus):
        base, index = corpus
        results = index.query_columns(base, "key", "target", top_k=5, min_join_size=32)
        assert results, "expected at least one result"
        assert results[0].table_name == "strong"
        mi_by_table = {result.table_name: result.mi_estimate for result in results}
        assert mi_by_table["strong"] > mi_by_table.get("weak", 0.0)

    def test_unjoinable_candidate_filtered_by_containment(self, corpus):
        base, index = corpus
        results = index.query_columns(
            base, "key", "target", top_k=10, min_containment=0.5, min_join_size=16
        )
        assert all(result.table_name != "unrelated" for result in results)

    def test_min_join_size_filters_empty_joins(self, corpus):
        base, index = corpus
        results = index.query_columns(base, "key", "target", top_k=10, min_join_size=16)
        assert all(result.sketch_join_size >= 16 for result in results)

    def test_top_k_truncation(self, corpus):
        base, index = corpus
        results = index.query_columns(base, "key", "target", top_k=1, min_join_size=16)
        assert len(results) == 1

    def test_query_object_interface(self, corpus):
        base, index = corpus
        query = AugmentationQuery(
            table=base, key_column="key", target_column="target", top_k=3, min_join_size=16
        )
        results = index.query(query)
        assert len(results) <= 3

    def test_all_candidates_below_min_containment_returns_empty(self, corpus):
        """An impossible containment threshold empties the candidate set —
        a valid query with a valid (empty) answer, not an error."""
        base, index = corpus
        results = index.query_columns(
            base, "key", "target", top_k=10, min_containment=1.1, min_join_size=16
        )
        assert results == []

    def test_empty_index_raises(self, corpus):
        base, _ = corpus
        with pytest.raises(DiscoveryError):
            SketchIndex().query_columns(base, "key", "target")

    def test_concurrent_query_identical_to_sequential(self, corpus):
        base, index = corpus
        sequential = index.query_columns(base, "key", "target", top_k=0, min_join_size=16)
        concurrent = index.query_columns(
            base, "key", "target", top_k=0, min_join_size=16, max_workers=4
        )
        assert [(r.candidate_id, r.mi_estimate) for r in sequential] == [
            (r.candidate_id, r.mi_estimate) for r in concurrent
        ]

    def test_repeated_queries_reuse_memoized_base_sketch(self, corpus):
        base, index = corpus
        index.engine.clear_cache()
        index.query_columns(base, "key", "target", top_k=1, min_join_size=16)
        index.query_columns(base, "key", "target", top_k=2, min_join_size=16)
        assert index.engine.cache_info()["hits"] >= 1

    def test_results_have_provenance(self, corpus):
        base, index = corpus
        result = index.query_columns(base, "key", "target", top_k=1, min_join_size=16)[0]
        assert result.candidate_id
        assert result.estimator in {"MLE", "Mixed-KSG", "DC-KSG"}
        assert 0.0 <= result.containment <= 1.0
