"""Tests for the sharded parallel IndexBuilder."""

from __future__ import annotations

import pytest

from repro.discovery import IndexBuilder, SketchIndex, shard_for_table
from repro.discovery.index import IndexedCandidate
from repro.engine import EngineConfig, SketchEngine
from repro.exceptions import ColumnNotFoundError, DiscoveryError
from repro.relational.table import Table

CONFIG = EngineConfig(method="TUPSK", capacity=64, seed=5)


@pytest.fixture
def lake(rng):
    keys = [f"id{i:04d}" for i in range(120)]
    target = rng.normal(size=120)
    base = Table.from_dict(
        {"key": keys, "target": target.tolist()}, name="base"
    )
    tables = []
    for position in range(6):
        row_keys = [keys[i] for i in rng.integers(0, 120, size=200)]
        tables.append(
            Table.from_dict(
                {
                    "key": row_keys,
                    "a": rng.normal(size=200).tolist(),
                    "b": [["x", "y"][i] for i in rng.integers(0, 2, size=200)],
                },
                name=f"t{position}",
            )
        )
    return base, tables


def serial_index(tables) -> SketchIndex:
    index = SketchIndex(SketchEngine(CONFIG))
    for table in tables:
        index.add_table(table, ["key"])
    return index


class TestEquivalenceWithSerialPath:
    def assert_same_index(self, built: SketchIndex, reference: SketchIndex):
        assert [c.candidate_id for c in built.candidates] == [
            c.candidate_id for c in reference.candidates
        ]
        for candidate, expected in zip(built.candidates, reference.candidates):
            assert candidate.sketch == expected.sketch
            assert candidate.key_kmv.hashes == expected.key_kmv.hashes
            assert candidate.key_kmv.values == expected.key_kmv.values
            assert candidate.profile == expected.profile
            assert candidate.aggregate == expected.aggregate

    def test_inline_build_matches_serial(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=4)
        for table in tables:
            builder.add_table(table, ["key"])
        self.assert_same_index(builder.build(), serial_index(tables))

    def test_process_pool_build_matches_serial(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=4, max_workers=2)
        for table in tables:
            builder.add_table(table, ["key"])
        self.assert_same_index(builder.build(), serial_index(tables))

    def test_query_results_identical(self, lake):
        base, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=3, max_workers=2)
        for table in tables:
            builder.add_table(table, ["key"])
        built = builder.build()
        reference = serial_index(tables)
        ours = built.query_columns(base, "key", "target", top_k=5, min_join_size=4)
        theirs = reference.query_columns(base, "key", "target", top_k=5, min_join_size=4)
        assert [(r.candidate_id, r.mi_estimate) for r in ours] == [
            (r.candidate_id, r.mi_estimate) for r in theirs
        ]

    def test_shard_count_does_not_change_the_index(self, lake):
        _, tables = lake
        indexes = []
        for num_shards in (1, 2, 7):
            builder = IndexBuilder(CONFIG, num_shards=num_shards)
            for table in tables:
                builder.add_table(table, ["key"])
            indexes.append(builder.build())
        self.assert_same_index(indexes[1], indexes[0])
        self.assert_same_index(indexes[2], indexes[0])


class TestIncrementalBuilds:
    def test_add_table_invalidates_only_its_shard(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=8)
        for table in tables[:-1]:
            builder.add_table(table, ["key"])
        builder.build()
        assert builder.dirty_shards == set()
        builder.add_table(tables[-1], ["key"])
        assert builder.dirty_shards == {builder.shard_of(tables[-1].name)}
        index = builder.build()
        assert len(index) == len(serial_index(tables))
        assert builder.dirty_shards == set()

    def test_incremental_build_matches_full_rebuild(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=8)
        for table in tables[:3]:
            builder.add_table(table, ["key"])
        builder.build()
        for table in tables[3:]:
            builder.add_table(table, ["key"])
        incremental = builder.build()
        TestEquivalenceWithSerialPath().assert_same_index(
            incremental, serial_index(tables)
        )

    def test_remove_table_drops_its_candidates(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=4)
        for table in tables:
            builder.add_table(table, ["key"])
        builder.build()
        builder.remove_table(tables[0].name)
        assert builder.dirty_shards == {builder.shard_of(tables[0].name)}
        index = builder.build()
        names = {candidate.profile.table_name for candidate in index.candidates}
        assert tables[0].name not in names
        assert len(index) == (len(tables) - 1) * 2

    def test_reregistering_a_name_replaces_the_table(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=4)
        builder.add_table(tables[0], ["key"])
        builder.build()
        replacement = Table.from_dict(
            {
                "key": tables[1].column("key").values,
                "a": tables[1].column("a").values,
            },
            name=tables[0].name,
        )
        builder.add_table(replacement, ["key"])
        index = builder.build()
        assert len(index) == 1  # replacement has a single value column

    def test_build_into_existing_index(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG, num_shards=4)
        builder.add_table(tables[0], ["key"])
        index = builder.build()
        other = IndexBuilder(CONFIG, num_shards=4)
        other.add_table(tables[1], ["key"])
        merged = other.build(into=index)
        assert merged is index
        assert len(merged) == 4


class TestRegistrationAndErrors:
    def test_len_counts_candidate_specs(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG)
        builder.add_table(tables[0], ["key"])
        assert len(builder) == 2
        builder.add_table(tables[1], ["key"], value_columns=["a"])
        assert len(builder) == 3

    def test_unnamed_tables_get_positional_names(self, rng):
        table = Table.from_dict(
            {"key": ["a", "b", "c"], "v": [1.0, 2.0, 3.0]}
        )
        builder = IndexBuilder(CONFIG)
        name = builder.add_table(table, ["key"])
        assert name == "table_0"
        index = builder.build()
        assert index.candidates[0].candidate_id.startswith("table_0:")

    def test_anonymous_names_never_reused_after_removal(self):
        """Removing an unnamed table must not let a later anonymous
        registration collide with (and replace) a surviving one."""
        make = lambda v: Table.from_dict({"key": ["a", "b", "c"], "v": v})
        builder = IndexBuilder(CONFIG)
        first = builder.add_table(make([1.0, 2.0, 3.0]), ["key"])
        second = builder.add_table(make([4.0, 5.0, 6.0]), ["key"])
        builder.remove_table(first)
        third = builder.add_table(make([7.0, 8.0, 9.0]), ["key"])
        assert len({first, second, third}) == 3
        assert sorted(builder.table_names) == sorted([second, third])
        assert len(builder.build()) == 2

    def test_shard_assignment_is_stable(self):
        assert shard_for_table("weather", 16) == shard_for_table("weather", 16)
        with pytest.raises(DiscoveryError):
            shard_for_table("weather", 0)

    def test_unknown_remove_rejected(self):
        builder = IndexBuilder(CONFIG)
        with pytest.raises(DiscoveryError, match="unknown table"):
            builder.remove_table("nope")

    def test_missing_columns_rejected_at_registration(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG)
        with pytest.raises(ColumnNotFoundError):
            builder.add_table(tables[0], ["missing"])
        with pytest.raises(ColumnNotFoundError):
            builder.add_table(tables[0], ["key"], value_columns=["missing"])

    def test_table_without_candidate_pairs_rejected(self):
        table = Table.from_dict({"key": ["a", "b"]}, name="only-key")
        builder = IndexBuilder(CONFIG)
        with pytest.raises(DiscoveryError, match="no candidate"):
            builder.add_table(table, ["key"])

    def test_metadata_and_agg_apply_to_candidates(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG)
        builder.add_table(
            tables[0], ["key"], value_columns=["a"], agg="sum", metadata={"origin": "x"}
        )
        candidate = builder.build().candidates[0]
        assert candidate.aggregate == "sum"
        assert candidate.metadata == {"origin": "x"}

    def test_add_prebuilt_rejects_mismatched_config(self, lake):
        _, tables = lake
        builder = IndexBuilder(CONFIG)
        builder.add_table(tables[0], ["key"])
        candidate: IndexedCandidate = builder.build().candidates[0]
        other = SketchIndex(EngineConfig(method="TUPSK", capacity=64, seed=99))
        with pytest.raises(DiscoveryError, match="seed"):
            other.add_prebuilt(candidate)
        smaller = SketchIndex(EngineConfig(method="TUPSK", capacity=32, seed=5))
        with pytest.raises(DiscoveryError, match="capacity"):
            smaller.add_prebuilt(candidate)

    def test_workers_default_from_engine_config(self):
        config = EngineConfig(build_workers=3, build_shards=5)
        builder = IndexBuilder(config)
        assert builder.max_workers == 3
        assert builder.num_shards == 5


class TestStreamedRegistration:
    """add_table_stream: one-pass registration, identical to batch builds."""

    def test_streamed_build_identical_to_batch(self, lake):
        from repro.ingest import InMemoryReader

        _, tables = lake
        batch = IndexBuilder(CONFIG)
        for table in tables:
            batch.add_table(table, ["key"])
        reference = batch.build()

        streamed = IndexBuilder(CONFIG)
        for table in tables:
            streamed.add_table_stream(InMemoryReader(table, chunk_size=47), ["key"])
        index = streamed.build()

        assert [c.candidate_id for c in index.candidates] == [
            c.candidate_id for c in reference.candidates
        ]
        for mine, ref in zip(index.candidates, reference.candidates):
            assert mine.sketch == ref.sketch
            assert mine.profile == ref.profile
            assert mine.key_kmv.hashes == ref.key_kmv.hashes

    def test_mixed_batch_and_streamed_registration_order(self, lake):
        from repro.ingest import InMemoryReader

        _, tables = lake
        builder = IndexBuilder(CONFIG)
        builder.add_table(tables[0], ["key"])
        builder.add_table_stream(InMemoryReader(tables[1], 50), ["key"])
        builder.add_table(tables[2], ["key"])
        index = builder.build()
        assert len(builder) == len(index) == 6
        assert [c.profile.table_name for c in index.candidates] == [
            "t0", "t0", "t1", "t1", "t2", "t2"
        ]
        assert builder.table_names == ["t0", "t2", "t1"]

    def test_streamed_replaces_and_is_replaced_by_batch(self, lake):
        from repro.ingest import InMemoryReader

        _, tables = lake
        renamed = tables[1].rename("t0")
        builder = IndexBuilder(CONFIG)
        builder.add_table(tables[0], ["key"])
        builder.add_table_stream(InMemoryReader(renamed, 60), ["key"])
        index = builder.build()
        assert len(index) == 2  # the streamed copy replaced the batch one
        reference = IndexBuilder(CONFIG)
        reference.add_table(renamed, ["key"])
        assert [c.sketch for c in index.candidates] == [
            c.sketch for c in reference.build().candidates
        ]
        # ... and a later batch registration replaces the streamed one.
        builder.add_table(tables[0], ["key"])
        assert len(builder.build()) == 2
        assert builder.table_names == ["t0"]

    def test_streamed_tables_can_be_removed(self, lake):
        from repro.ingest import InMemoryReader

        _, tables = lake
        builder = IndexBuilder(CONFIG)
        builder.add_table_stream(InMemoryReader(tables[0], 80), ["key"])
        assert len(builder) == 2
        builder.remove_table("t0")
        assert len(builder) == 0
        assert builder.table_names == []
        with pytest.raises(DiscoveryError, match="unknown table"):
            builder.remove_table("t0")

    def test_streamed_anonymous_tables_get_positional_names(self):
        from repro.ingest import InMemoryReader

        table = Table.from_dict({"key": ["a", "b"], "v": [1.0, 2.0]})
        builder = IndexBuilder(CONFIG)
        name = builder.add_table_stream(InMemoryReader(table, 10), ["key"])
        assert name == "table_0"

    def test_streamed_registration_errors_as_discovery_errors(self):
        """Misuse raises DiscoveryError from both registration paths."""
        from repro.ingest import InMemoryReader

        only_key = Table.from_dict({"key": ["a", "b"]}, name="only-key")
        builder = IndexBuilder(CONFIG)
        with pytest.raises(DiscoveryError, match="no candidate"):
            builder.add_table_stream(InMemoryReader(only_key, 10), ["key"])
