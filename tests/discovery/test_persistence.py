"""Tests for SketchIndex persistence."""

import json

import pytest

from repro.discovery.index import SketchIndex
from repro.discovery.persistence import load_index, save_index
from repro.engine import EngineConfig
from repro.exceptions import DiscoveryError
from repro.relational.table import Table
from repro.sketches.serialization import HASH_ENCODING_VERSION


@pytest.fixture()
def populated_index(rng):
    keys = [f"id{i:05d}" for i in range(500)]
    target = rng.normal(size=500)
    base = Table.from_dict({"key": keys, "target": target.tolist()}, name="base")
    strong = Table.from_dict(
        {"key": keys, "signal": (target + 0.2 * rng.normal(size=500)).tolist()},
        name="strong",
    )
    categorical = Table.from_dict(
        {"key": keys, "label": ["hot" if value > 0 else "cold" for value in target]},
        name="labels",
    )
    index = SketchIndex(method="TUPSK", capacity=128, seed=4)
    index.add_candidate(strong, "key", "signal", metadata={"source": "unit-test"})
    index.add_candidate(categorical, "key", "label")
    return base, index


class TestSaveAndLoad:
    def test_roundtrip_preserves_configuration_and_candidates(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        assert restored.method == index.method
        assert restored.capacity == index.capacity
        assert restored.seed == index.seed
        assert len(restored) == len(index)
        original = index.candidates[0]
        loaded = restored.get(original.candidate_id)
        assert loaded.aggregate == original.aggregate
        assert loaded.metadata == original.metadata
        assert loaded.sketch.key_ids == original.sketch.key_ids
        assert loaded.profile.table_name == original.profile.table_name

    def test_roundtrip_preserves_full_engine_config(self, tmp_path, populated_index):
        """Estimator policy and aggregate defaults survive, not just the triple."""
        _, reference = populated_index
        index = SketchIndex(
            EngineConfig(
                capacity=128,
                seed=4,
                estimator_k=7,
                min_join_size=8,
                numeric_aggregate="sum",
            )
        )
        for candidate in reference.candidates:
            index._candidates[candidate.candidate_id] = candidate
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        assert restored.config == index.config

    def test_loads_pre_engine_index_document(self, tmp_path, populated_index):
        """Directories written before engine_config existed still load."""
        _, index = populated_index
        save_index(index, tmp_path / "index")
        index_path = tmp_path / "index" / "index.json"
        document = json.loads(index_path.read_text(encoding="utf-8"))
        del document["engine_config"]
        index_path.write_text(json.dumps(document), encoding="utf-8")
        restored = load_index(tmp_path / "index")
        assert (restored.method, restored.capacity, restored.seed) == ("TUPSK", 128, 4)
        assert len(restored) == len(index)

    def test_restored_index_answers_queries_identically(self, tmp_path, populated_index):
        base, index = populated_index
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        original_results = index.query_columns(base, "key", "target", top_k=5, min_join_size=16)
        restored_results = restored.query_columns(base, "key", "target", top_k=5, min_join_size=16)
        assert [r.candidate_id for r in restored_results] == [
            r.candidate_id for r in original_results
        ]
        assert [r.mi_estimate for r in restored_results] == pytest.approx(
            [r.mi_estimate for r in original_results]
        )

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "does-not-exist")

    def test_malformed_index_file_raises(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "index.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(DiscoveryError):
            load_index(directory)

    def test_unsupported_version_raises(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        path = tmp_path / "index" / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document["format_version"] = 42
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "index")


class TestColumnarStoreLayout:
    def test_saved_index_uses_columnar_store(self, tmp_path, populated_index):
        """Version 2 writes one store file, not one JSON file per sketch."""
        _, index = populated_index
        save_index(index, tmp_path / "index")
        assert (tmp_path / "index" / "sketches.npz").exists()
        assert not (tmp_path / "index" / "sketches").exists()
        document = json.loads(
            (tmp_path / "index" / "index.json").read_text(encoding="utf-8")
        )
        assert document["format_version"] == 2

    def test_memory_mapped_load_matches_eager_load(self, tmp_path, populated_index):
        base, index = populated_index
        save_index(index, tmp_path / "index")
        eager = load_index(tmp_path / "index")
        mapped = load_index(tmp_path / "index", mmap=True)
        assert [c.candidate_id for c in mapped.candidates] == [
            c.candidate_id for c in eager.candidates
        ]
        for left, right in zip(mapped.candidates, eager.candidates):
            assert left.sketch == right.sketch
            assert left.key_kmv.hashes == right.key_kmv.hashes

    def test_corrupted_store_file_raises_discovery_error(
        self, tmp_path, populated_index
    ):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        (tmp_path / "index" / "sketches.npz").write_bytes(b"garbage")
        with pytest.raises(DiscoveryError, match="sketch store"):
            load_index(tmp_path / "index")

    def test_candidate_count_mismatch_raises(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        path = tmp_path / "index" / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document["candidates"].pop()
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DiscoveryError, match="candidates"):
            load_index(tmp_path / "index")


class TestLegacyFormatMigration:
    def _write_v1_layout(self, index, directory):
        """Write the pre-store (format version 1) directory layout."""
        from repro.sketches.serialization import save_sketch

        directory.mkdir(parents=True, exist_ok=True)
        (directory / "sketches").mkdir(exist_ok=True)
        candidates_document = []
        for position, candidate in enumerate(index.candidates):
            sketch_file = f"{position:06d}.json"
            save_sketch(candidate.sketch, directory / "sketches" / sketch_file)
            candidates_document.append(
                {
                    "candidate_id": candidate.candidate_id,
                    "aggregate": candidate.aggregate,
                    "profile": {
                        "table_name": candidate.profile.table_name,
                        "key_column": candidate.profile.key_column,
                        "value_column": candidate.profile.value_column,
                        "num_rows": candidate.profile.num_rows,
                        "key_distinct": candidate.profile.key_distinct,
                        "key_nulls": candidate.profile.key_nulls,
                        "value_dtype": candidate.profile.value_dtype.value,
                        "value_distinct": candidate.profile.value_distinct,
                        "value_nulls": candidate.profile.value_nulls,
                    },
                    "key_kmv": {
                        "capacity": candidate.key_kmv.capacity,
                        "seed": candidate.key_kmv.seed,
                        "values": sorted(
                            candidate.key_kmv.values, key=lambda value: str(value)
                        ),
                    },
                    "metadata": dict(candidate.metadata),
                    "sketch_file": sketch_file,
                }
            )
        document = {
            "format_version": 1,
            # Layout v1 with current-encoding sketches: exercises the legacy
            # *layout* reader (truly old directories also carry stale hashes
            # and are refused before the layout is even looked at).
            "hash_encoding": HASH_ENCODING_VERSION,
            "method": index.method,
            "capacity": index.capacity,
            "seed": index.seed,
            "engine_config": index.config.to_dict(),
            "candidates": candidates_document,
        }
        (directory / "index.json").write_text(json.dumps(document), encoding="utf-8")

    def test_v1_directory_still_loads(self, tmp_path, populated_index):
        base, index = populated_index
        self._write_v1_layout(index, tmp_path / "legacy")
        restored = load_index(tmp_path / "legacy")
        assert len(restored) == len(index)
        original = index.candidates[0]
        loaded = restored.get(original.candidate_id)
        assert loaded.sketch == original.sketch
        assert loaded.key_kmv.hashes == original.key_kmv.hashes

    def test_unstamped_directory_refused_with_rebuild_instructions(
        self, tmp_path, populated_index
    ):
        """Directories from before the length-prefixed tuple encoding carry
        stale hashes and must be rebuilt, not silently served."""
        _, index = populated_index
        save_index(index, tmp_path / "index")
        path = tmp_path / "index" / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        del document["hash_encoding"]
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DiscoveryError, match="hash-encoding.*rebuild"):
            load_index(tmp_path / "index")

    def test_future_encoding_refused(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        path = tmp_path / "index" / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["hash_encoding"] == HASH_ENCODING_VERSION
        document["hash_encoding"] = HASH_ENCODING_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DiscoveryError, match="hash-encoding"):
            load_index(tmp_path / "index")

    def test_resaving_a_v1_index_migrates_to_v2(self, tmp_path, populated_index):
        _, index = populated_index
        self._write_v1_layout(index, tmp_path / "legacy")
        restored = load_index(tmp_path / "legacy")
        save_index(restored, tmp_path / "migrated")
        document = json.loads(
            (tmp_path / "migrated" / "index.json").read_text(encoding="utf-8")
        )
        assert document["format_version"] == 2
        migrated = load_index(tmp_path / "migrated")
        assert [c.candidate_id for c in migrated.candidates] == [
            c.candidate_id for c in index.candidates
        ]
        for left, right in zip(migrated.candidates, index.candidates):
            assert left.sketch == right.sketch


class TestPostingsSidecar:
    def _strip_sidecar(self, directory):
        """Turn a freshly saved directory into a pre-postings one."""
        (directory / "postings.npz").unlink()
        path = directory / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document.pop("postings_file", None)
        path.write_text(json.dumps(document), encoding="utf-8")

    def test_save_writes_and_load_attaches_the_sidecar(
        self, tmp_path, populated_index
    ):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        assert (tmp_path / "index" / "postings.npz").exists()
        for mmap in (False, True):
            restored = load_index(tmp_path / "index", mmap=mmap)
            assert restored.postings is not None
            assert restored.postings.ids() == {
                candidate.candidate_id for candidate in index.candidates
            }

    def test_pre_postings_directory_loads_and_queries_via_full_scan(
        self, tmp_path, populated_index
    ):
        """The migration path: an old directory has no sidecar, the loaded
        index falls back to scans, and answers don't change."""
        base, index = populated_index
        save_index(index, tmp_path / "index")
        reference = load_index(tmp_path / "index").query_columns(
            base, "key", "target", top_k=5, min_containment=0.1, min_join_size=16
        )
        self._strip_sidecar(tmp_path / "index")
        old = load_index(tmp_path / "index")
        assert old.postings is None
        results = old.query_columns(
            base, "key", "target", top_k=5, min_containment=0.1, min_join_size=16
        )
        assert [(r.candidate_id, r.mi_estimate, r.containment) for r in results] == [
            (r.candidate_id, r.mi_estimate, r.containment) for r in reference
        ]

    def test_resaving_a_pre_postings_directory_adds_the_sidecar(
        self, tmp_path, populated_index
    ):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        self._strip_sidecar(tmp_path / "index")
        old = load_index(tmp_path / "index")
        save_index(old, tmp_path / "migrated")
        assert (tmp_path / "migrated" / "postings.npz").exists()
        assert load_index(tmp_path / "migrated").postings is not None

    def test_unreadable_sidecar_degrades_to_scan_with_a_warning(
        self, tmp_path, populated_index
    ):
        base, index = populated_index
        save_index(index, tmp_path / "index")
        (tmp_path / "index" / "postings.npz").write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="ignoring posting index"):
            degraded = load_index(tmp_path / "index")
        assert degraded.postings is None
        assert degraded.query_columns(
            base, "key", "target", top_k=5, min_containment=0.1, min_join_size=16
        )

    def test_stale_sidecar_from_another_index_is_ignored(
        self, tmp_path, populated_index, rng
    ):
        """A sidecar whose candidate set disagrees with index.json must not
        be probed — a missing live candidate would change answers."""
        import shutil

        _, index = populated_index
        save_index(index, tmp_path / "index")
        other = SketchIndex(method="TUPSK", capacity=128, seed=4)
        table = Table.from_dict(
            {"key": [f"x{i}" for i in range(50)], "v": rng.normal(size=50).tolist()},
            name="other",
        )
        other.add_candidate(table, "key", "v")
        save_index(other, tmp_path / "other")
        shutil.copy(
            tmp_path / "other" / "postings.npz", tmp_path / "index" / "postings.npz"
        )
        with pytest.warns(RuntimeWarning, match="does not match"):
            degraded = load_index(tmp_path / "index")
        assert degraded.postings is None
