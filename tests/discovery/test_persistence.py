"""Tests for SketchIndex persistence."""

import json

import numpy as np
import pytest

from repro.discovery.index import SketchIndex
from repro.discovery.persistence import load_index, save_index
from repro.engine import EngineConfig
from repro.exceptions import DiscoveryError
from repro.relational.table import Table


@pytest.fixture()
def populated_index(rng):
    keys = [f"id{i:05d}" for i in range(500)]
    target = rng.normal(size=500)
    base = Table.from_dict({"key": keys, "target": target.tolist()}, name="base")
    strong = Table.from_dict(
        {"key": keys, "signal": (target + 0.2 * rng.normal(size=500)).tolist()},
        name="strong",
    )
    categorical = Table.from_dict(
        {"key": keys, "label": ["hot" if value > 0 else "cold" for value in target]},
        name="labels",
    )
    index = SketchIndex(method="TUPSK", capacity=128, seed=4)
    index.add_candidate(strong, "key", "signal", metadata={"source": "unit-test"})
    index.add_candidate(categorical, "key", "label")
    return base, index


class TestSaveAndLoad:
    def test_roundtrip_preserves_configuration_and_candidates(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        assert restored.method == index.method
        assert restored.capacity == index.capacity
        assert restored.seed == index.seed
        assert len(restored) == len(index)
        original = index.candidates[0]
        loaded = restored.get(original.candidate_id)
        assert loaded.aggregate == original.aggregate
        assert loaded.metadata == original.metadata
        assert loaded.sketch.key_ids == original.sketch.key_ids
        assert loaded.profile.table_name == original.profile.table_name

    def test_roundtrip_preserves_full_engine_config(self, tmp_path, populated_index):
        """Estimator policy and aggregate defaults survive, not just the triple."""
        _, reference = populated_index
        index = SketchIndex(
            EngineConfig(
                capacity=128,
                seed=4,
                estimator_k=7,
                min_join_size=8,
                numeric_aggregate="sum",
            )
        )
        for candidate in reference.candidates:
            index._candidates[candidate.candidate_id] = candidate
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        assert restored.config == index.config

    def test_loads_pre_engine_index_document(self, tmp_path, populated_index):
        """Directories written before engine_config existed still load."""
        _, index = populated_index
        save_index(index, tmp_path / "index")
        index_path = tmp_path / "index" / "index.json"
        document = json.loads(index_path.read_text(encoding="utf-8"))
        del document["engine_config"]
        index_path.write_text(json.dumps(document), encoding="utf-8")
        restored = load_index(tmp_path / "index")
        assert (restored.method, restored.capacity, restored.seed) == ("TUPSK", 128, 4)
        assert len(restored) == len(index)

    def test_restored_index_answers_queries_identically(self, tmp_path, populated_index):
        base, index = populated_index
        save_index(index, tmp_path / "index")
        restored = load_index(tmp_path / "index")
        original_results = index.query_columns(base, "key", "target", top_k=5, min_join_size=16)
        restored_results = restored.query_columns(base, "key", "target", top_k=5, min_join_size=16)
        assert [r.candidate_id for r in restored_results] == [
            r.candidate_id for r in original_results
        ]
        assert [r.mi_estimate for r in restored_results] == pytest.approx(
            [r.mi_estimate for r in original_results]
        )

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "does-not-exist")

    def test_malformed_index_file_raises(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "index.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(DiscoveryError):
            load_index(directory)

    def test_unsupported_version_raises(self, tmp_path, populated_index):
        _, index = populated_index
        save_index(index, tmp_path / "index")
        path = tmp_path / "index" / "index.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document["format_version"] = 42
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "index")
