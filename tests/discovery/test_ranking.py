"""Tests for discovery-result ranking."""

import pytest

from repro.discovery.query import AugmentationResult
from repro.discovery.ranking import rank_results, top_k_per_estimator, top_k_results


def make_result(mi, estimator="MLE", join_size=100, name="t"):
    return AugmentationResult(
        candidate_id=f"{name}:{mi}",
        table_name=name,
        key_column="key",
        value_column="value",
        aggregate="avg",
        estimator=estimator,
        mi_estimate=mi,
        sketch_join_size=join_size,
        containment=1.0,
        value_dtype="float",
    )


class TestRankResults:
    def test_descending_by_mi(self):
        results = [make_result(0.1), make_result(0.9), make_result(0.5)]
        ranked = rank_results(results)
        assert [result.mi_estimate for result in ranked] == [0.9, 0.5, 0.1]

    def test_ties_broken_by_join_size(self):
        results = [make_result(0.5, join_size=10), make_result(0.5, join_size=500)]
        ranked = rank_results(results)
        assert ranked[0].sketch_join_size == 500

    def test_full_ties_keep_input_order(self):
        """Equal (MI, join size) pairs must stay in input order — the sort
        is stable, and callers (and the serving cache) rely on deterministic
        output for identical inputs."""
        first = make_result(0.5, join_size=100, name="alpha")
        second = make_result(0.5, join_size=100, name="beta")
        third = make_result(0.5, join_size=100, name="gamma")
        assert rank_results([first, second, third]) == [first, second, third]
        assert rank_results([third, first, second]) == [third, first, second]

    def test_tie_break_applies_within_equal_mi_groups_only(self):
        """Join size must never promote a result past a higher MI estimate."""
        results = [
            make_result(0.2, join_size=10_000),
            make_result(0.9, join_size=2),
            make_result(0.2, join_size=50),
        ]
        ranked = rank_results(results)
        assert [(r.mi_estimate, r.sketch_join_size) for r in ranked] == [
            (0.9, 2),
            (0.2, 10_000),
            (0.2, 50),
        ]

    def test_negative_and_nonfinite_free_ordering(self):
        """Negative MI estimates (possible for KSG-family estimators) rank
        below positive ones, not by magnitude."""
        ranked = rank_results([make_result(-0.3), make_result(0.1), make_result(-0.1)])
        assert [r.mi_estimate for r in ranked] == [0.1, -0.1, -0.3]

    def test_empty_input(self):
        assert rank_results([]) == []


class TestTopKResults:
    def test_matches_full_sort_for_every_k(self):
        results = [
            make_result(mi, join_size=join, name=f"r{position}")
            for position, (mi, join) in enumerate(
                [(0.5, 10), (0.5, 10), (0.9, 1), (0.5, 99), (0.1, 5), (0.9, 1)]
            )
        ]
        full = rank_results(results)
        for k in range(len(results) + 2):
            expected = full if k == 0 else full[:k]
            assert top_k_results(results, k) == expected

    def test_empty_input(self):
        assert top_k_results([], 5) == []


class TestTopKPerEstimator:
    def test_groups_by_estimator(self):
        results = [
            make_result(0.5, "MLE"),
            make_result(4.0, "MLE"),
            make_result(0.8, "Mixed-KSG"),
            make_result(0.2, "Mixed-KSG"),
        ]
        grouped = top_k_per_estimator(results, k=1)
        assert set(grouped) == {"MLE", "Mixed-KSG"}
        assert grouped["MLE"][0].mi_estimate == 4.0
        assert grouped["Mixed-KSG"][0].mi_estimate == 0.8

    def test_k_truncates_each_group(self):
        results = [make_result(mi, "MLE") for mi in (0.1, 0.2, 0.3, 0.4)]
        grouped = top_k_per_estimator(results, k=2)
        assert len(grouped["MLE"]) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_per_estimator([], k=0)

    def test_describe_result(self):
        text = make_result(0.7).describe()
        assert "MI~0.700" in text
        assert "AVG" in text
