"""Tests for the sketch join."""

import pytest

from repro.exceptions import IncompatibleSketchError
from repro.relational.table import Table
from repro.sketches.base import SketchSide, build_sketch
from repro.sketches.join import join_sketches


def build_pair(base, cand, method="TUPSK", capacity=64, seed=0, agg="avg"):
    base_sketch = build_sketch(
        base, "key", "target", method=method, side=SketchSide.BASE, capacity=capacity, seed=seed
    )
    cand_sketch = build_sketch(
        cand, "key", "feature", method=method, side=SketchSide.CANDIDATE,
        capacity=capacity, seed=seed, agg=agg,
    )
    return base_sketch, cand_sketch


class TestJoinSemantics:
    def test_recovers_subset_of_true_join_pairs(self, correlated_pair):
        """Every recovered (x, y) pair must exist in the full augmentation join."""
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand, capacity=128)
        joined = join_sketches(base_sketch, cand_sketch)
        true_pairs = set(
            zip(cand.column("feature").values, base.column("target").values)
        )
        assert joined.join_size > 0
        for pair in joined.pairs():
            assert pair in true_pairs

    def test_full_join_recovered_when_capacity_exceeds_table(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand, capacity=10_000)
        joined = join_sketches(base_sketch, cand_sketch)
        assert joined.join_size == base.num_rows

    def test_join_size_bounded_by_sketch_sizes(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand, capacity=32)
        joined = join_sketches(base_sketch, cand_sketch)
        assert joined.join_size <= len(base_sketch)

    def test_disjoint_keys_empty_join(self):
        base = Table.from_dict({"key": ["a", "b"], "target": [1, 2]})
        cand = Table.from_dict({"key": ["x", "y"], "feature": [3, 4]})
        base_sketch, cand_sketch = build_pair(base, cand, capacity=8)
        assert join_sketches(base_sketch, cand_sketch).join_size == 0

    def test_repeated_base_keys_join_repeatedly(self):
        base = Table.from_dict({"key": ["a", "a", "a", "b"], "target": [1, 2, 3, 4]})
        cand = Table.from_dict({"key": ["a", "b"], "feature": [10.0, 20.0]})
        base_sketch, cand_sketch = build_pair(base, cand, capacity=16)
        joined = join_sketches(base_sketch, cand_sketch)
        assert joined.join_size == 4
        assert sorted(joined.x_values) == [10.0, 10.0, 10.0, 20.0]

    def test_metadata_propagated(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand)
        joined = join_sketches(base_sketch, cand_sketch)
        assert joined.base_method == "TUPSK"
        assert joined.metadata["aggregate"] == "avg"
        assert joined.x_dtype.is_numeric
        assert joined.y_dtype.is_numeric


class TestCompatibilityChecks:
    def test_different_seeds_rejected(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, _ = build_pair(base, cand, seed=0)
        _, cand_sketch = build_pair(base, cand, seed=1)
        with pytest.raises(IncompatibleSketchError):
            join_sketches(base_sketch, cand_sketch)

    def test_wrong_side_rejected(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand)
        with pytest.raises(IncompatibleSketchError):
            join_sketches(cand_sketch, base_sketch)

    def test_wrong_side_allowed_when_not_strict(self, correlated_pair):
        base, cand = correlated_pair
        base_sketch, cand_sketch = build_pair(base, cand)
        joined = join_sketches(cand_sketch, base_sketch, strict_sides=False)
        assert joined.join_size > 0

    def test_cross_method_join_works_with_same_seed(self, correlated_pair):
        """Sketches of different methods share the hash, so they can still join."""
        base, cand = correlated_pair
        base_sketch, _ = build_pair(base, cand, method="TUPSK", capacity=64)
        _, cand_sketch = build_pair(base, cand, method="LV2SK", capacity=64)
        joined = join_sketches(base_sketch, cand_sketch)
        assert joined.join_size > 0
