"""Tests for the TUPSK (tuple-based sampling) sketch."""

import numpy as np
import pytest

from repro.relational.table import Table
from repro.sketches.tupsk import TupleSketchBuilder


def make_skewed_table(num_rows=2000, num_keys=20, seed=0) -> Table:
    rng = np.random.default_rng(seed)
    weights = np.arange(1, num_keys + 1, dtype=float)
    weights /= weights.sum()
    keys = rng.choice([f"k{i}" for i in range(num_keys)], size=num_rows, p=weights)
    values = rng.normal(size=num_rows)
    return Table.from_dict({"key": keys.tolist(), "value": values.tolist()}, name="skew")


class TestBaseSide:
    def test_exact_capacity_when_table_larger(self):
        table = make_skewed_table(2000)
        sketch = TupleSketchBuilder(capacity=256).sketch_base(table, "key", "value")
        assert len(sketch) == 256

    def test_whole_table_when_smaller_than_capacity(self, taxi_table):
        sketch = TupleSketchBuilder(capacity=100).sketch_base(
            taxi_table, "zipcode", "num_trips"
        )
        assert len(sketch) == taxi_table.num_rows

    def test_deterministic_given_seed(self):
        table = make_skewed_table(1000)
        first = TupleSketchBuilder(capacity=64, seed=5).sketch_base(table, "key", "value")
        second = TupleSketchBuilder(capacity=64, seed=5).sketch_base(table, "key", "value")
        assert first.key_ids == second.key_ids
        assert first.values == second.values

    def test_key_frequencies_roughly_proportional(self):
        """Uniform row-level inclusion => sketch key frequencies track table frequencies."""
        table = make_skewed_table(20_000, num_keys=10, seed=3)
        sketch = TupleSketchBuilder(capacity=2000, seed=1).sketch_base(table, "key", "value")
        table_freq = table.key_frequencies("key")
        hasher = TupleSketchBuilder(capacity=1, seed=1).hasher
        sketch_freq = {}
        for key, count in table_freq.items():
            key_id = hasher.key_id(key)
            sketch_freq[key] = sum(1 for kid in sketch.key_ids if kid == key_id)
        table_total = sum(table_freq.values())
        for key, count in table_freq.items():
            expected = 2000 * count / table_total
            assert abs(sketch_freq[key] - expected) < 6 * np.sqrt(expected + 1)

    def test_skewed_key_not_excluded(self, skewed_train_table):
        """The paper's motivating example: the dominant key 'f' must be sampled."""
        sketch = TupleSketchBuilder(capacity=5, seed=0).sketch_base(
            skewed_train_table, "key", "target"
        )
        hasher = TupleSketchBuilder(capacity=1, seed=0).hasher
        assert hasher.key_id("f") in sketch.key_id_set()


class TestCandidateSide:
    def test_aggregation_applied(self, weather_table):
        sketch = TupleSketchBuilder(capacity=16).sketch_candidate(
            weather_table, "date", "temp", agg="avg"
        )
        mapping = dict(zip(sketch.key_ids, sketch.values))
        hasher = TupleSketchBuilder(capacity=1).hasher
        assert mapping[hasher.key_id("2017-01-01")] == pytest.approx((44.1 + 42.0) / 2)

    def test_unique_hashed_keys(self):
        table = make_skewed_table(3000, num_keys=500)
        sketch = TupleSketchBuilder(capacity=256).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        assert len(sketch.key_ids) == len(set(sketch.key_ids)) == 256

    def test_coordination_with_base_side(self):
        """Keys selected on the candidate side coincide with base-side keys (j=1)."""
        keys = [f"k{i}" for i in range(2000)]
        table = Table.from_dict({"key": keys, "value": list(range(2000))})
        builder = TupleSketchBuilder(capacity=128, seed=9)
        base_sketch = builder.sketch_base(table, "key", "value")
        cand_sketch = builder.sketch_candidate(table, "key", "value", agg="first")
        # Unique keys: every row is occurrence 1, so both sides pick the same keys.
        assert base_sketch.key_id_set() == cand_sketch.key_id_set()
