"""Tests for the sketch data model, registry and build_sketch entry point."""

import pytest

from repro.exceptions import SketchError
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.sketches.base import Sketch, SketchSide, available_methods, build_sketch, get_builder


class TestRegistry:
    def test_all_paper_methods_registered(self):
        methods = available_methods()
        # Force registration through the factory first.
        get_builder("TUPSK")
        methods = available_methods()
        for method in ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK"):
            assert method in methods

    def test_get_builder_case_insensitive(self):
        assert get_builder("tupsk").method == "TUPSK"

    def test_unknown_method_raises(self):
        with pytest.raises(SketchError):
            get_builder("NOPE")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            get_builder("TUPSK", capacity=0)


class TestSketchSide:
    def test_is_a_real_enum(self):
        import enum

        assert issubclass(SketchSide, enum.Enum)
        assert list(SketchSide) == [SketchSide.BASE, SketchSide.CANDIDATE]

    def test_compares_with_plain_strings(self):
        assert SketchSide.BASE == "base"
        assert SketchSide.CANDIDATE == "candidate"
        assert str(SketchSide.BASE) == "base"

    def test_serializes_as_plain_string(self):
        import json

        assert json.dumps({"side": SketchSide.CANDIDATE}) == '{"side": "candidate"}'

    def test_coerce(self):
        assert SketchSide.coerce("base") is SketchSide.BASE
        assert SketchSide.coerce(SketchSide.CANDIDATE) is SketchSide.CANDIDATE
        with pytest.raises(SketchError):
            SketchSide.coerce("sideways")

    def test_sketch_normalizes_string_sides(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", side="base", capacity=8)
        assert sketch.side is SketchSide.BASE


class TestSketchDataModel:
    def test_misaligned_entries_rejected(self):
        with pytest.raises(SketchError):
            Sketch(
                method="TUPSK",
                side=SketchSide.BASE,
                seed=0,
                capacity=4,
                key_ids=[1, 2],
                values=[1],
                value_dtype=DType.INT,
                table_rows=2,
                distinct_keys=2,
            )

    def test_summary_and_items(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", capacity=8)
        summary = sketch.summary()
        assert summary["method"] == "TUPSK"
        assert summary["side"] == SketchSide.BASE
        assert summary["size"] == len(sketch)
        assert len(sketch.items()) == len(sketch)
        assert sketch.key_id_set() <= set(sketch.key_ids)


class TestBuildSketch:
    def test_base_side_default(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", capacity=16)
        assert sketch.side == SketchSide.BASE
        assert sketch.table_rows == taxi_table.num_rows
        assert sketch.distinct_keys == 2
        assert sketch.value_dtype is DType.INT

    def test_candidate_side_aggregates(self, weather_table):
        sketch = build_sketch(
            weather_table,
            "date",
            "temp",
            side=SketchSide.CANDIDATE,
            capacity=16,
            agg="avg",
        )
        assert sketch.side == SketchSide.CANDIDATE
        assert sketch.aggregate == "avg"
        # One entry per distinct date.
        assert len(sketch) == weather_table.column("date").distinct_count()
        assert sketch.value_dtype is DType.FLOAT

    def test_unknown_side_rejected(self, taxi_table):
        with pytest.raises(SketchError):
            build_sketch(taxi_table, "zipcode", "num_trips", side="middle")

    def test_null_keys_excluded(self):
        table = Table.from_dict({"k": ["a", None, "b"], "v": [1, 2, 3]})
        sketch = build_sketch(table, "k", "v", capacity=10)
        assert sketch.table_rows == 2
        assert len(sketch) == 2

    def test_all_null_keys_raise(self):
        table = Table.from_dict({"k": [None, None], "v": [1, 2]})
        with pytest.raises(SketchError):
            build_sketch(table, "k", "v")

    def test_every_method_respects_capacity(self, correlated_pair):
        base, cand = correlated_pair
        for method in ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK"):
            base_sketch = build_sketch(base, "key", "target", method=method, capacity=64)
            cand_sketch = build_sketch(
                cand, "key", "feature", method=method, side=SketchSide.CANDIDATE, capacity=64
            )
            assert len(base_sketch) <= 2 * 64, method
            assert len(cand_sketch) <= 64, method
