"""Tests for the sketch data model, registry and build_sketch entry point."""

import pytest

from repro.exceptions import SketchError
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.sketches.base import Sketch, SketchSide, available_methods, build_sketch, get_builder


class TestRegistry:
    def test_all_paper_methods_registered(self):
        methods = available_methods()
        # Force registration through the factory first.
        get_builder("TUPSK")
        methods = available_methods()
        for method in ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK"):
            assert method in methods

    def test_get_builder_case_insensitive(self):
        assert get_builder("tupsk").method == "TUPSK"

    def test_unknown_method_raises(self):
        with pytest.raises(SketchError):
            get_builder("NOPE")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            get_builder("TUPSK", capacity=0)


class TestSketchSide:
    def test_is_a_real_enum(self):
        import enum

        assert issubclass(SketchSide, enum.Enum)
        assert list(SketchSide) == [SketchSide.BASE, SketchSide.CANDIDATE]

    def test_compares_with_plain_strings(self):
        assert SketchSide.BASE == "base"
        assert SketchSide.CANDIDATE == "candidate"
        assert str(SketchSide.BASE) == "base"

    def test_serializes_as_plain_string(self):
        import json

        assert json.dumps({"side": SketchSide.CANDIDATE}) == '{"side": "candidate"}'

    def test_coerce(self):
        assert SketchSide.coerce("base") is SketchSide.BASE
        assert SketchSide.coerce(SketchSide.CANDIDATE) is SketchSide.CANDIDATE
        with pytest.raises(SketchError):
            SketchSide.coerce("sideways")

    def test_sketch_normalizes_string_sides(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", side="base", capacity=8)
        assert sketch.side is SketchSide.BASE


class TestSketchDataModel:
    def test_misaligned_entries_rejected(self):
        with pytest.raises(SketchError):
            Sketch(
                method="TUPSK",
                side=SketchSide.BASE,
                seed=0,
                capacity=4,
                key_ids=[1, 2],
                values=[1],
                value_dtype=DType.INT,
                table_rows=2,
                distinct_keys=2,
            )

    def test_summary_and_items(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", capacity=8)
        summary = sketch.summary()
        assert summary["method"] == "TUPSK"
        assert summary["side"] == SketchSide.BASE
        assert summary["size"] == len(sketch)
        assert len(sketch.items()) == len(sketch)
        assert sketch.key_id_set() <= set(sketch.key_ids)


class TestBuildSketch:
    def test_base_side_default(self, taxi_table):
        sketch = build_sketch(taxi_table, "zipcode", "num_trips", capacity=16)
        assert sketch.side == SketchSide.BASE
        assert sketch.table_rows == taxi_table.num_rows
        assert sketch.distinct_keys == 2
        assert sketch.value_dtype is DType.INT

    def test_candidate_side_aggregates(self, weather_table):
        sketch = build_sketch(
            weather_table,
            "date",
            "temp",
            side=SketchSide.CANDIDATE,
            capacity=16,
            agg="avg",
        )
        assert sketch.side == SketchSide.CANDIDATE
        assert sketch.aggregate == "avg"
        # One entry per distinct date.
        assert len(sketch) == weather_table.column("date").distinct_count()
        assert sketch.value_dtype is DType.FLOAT

    def test_unknown_side_rejected(self, taxi_table):
        with pytest.raises(SketchError):
            build_sketch(taxi_table, "zipcode", "num_trips", side="middle")

    def test_null_keys_excluded(self):
        table = Table.from_dict({"k": ["a", None, "b"], "v": [1, 2, 3]})
        sketch = build_sketch(table, "k", "v", capacity=10)
        # Null-key rows never enter the sketch, but table_rows reports the
        # full table size (the quantity the Sketch docstring promises).
        assert sketch.table_rows == 3
        assert len(sketch) == 2
        assert sketch.distinct_keys == 2

    def test_all_null_keys_raise(self):
        table = Table.from_dict({"k": [None, None], "v": [1, 2]})
        with pytest.raises(SketchError):
            build_sketch(table, "k", "v")

    def test_every_method_respects_capacity(self, correlated_pair):
        base, cand = correlated_pair
        for method in ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK"):
            base_sketch = build_sketch(base, "key", "target", method=method, capacity=64)
            cand_sketch = build_sketch(
                cand, "key", "feature", method=method, side=SketchSide.CANDIDATE, capacity=64
            )
            assert len(base_sketch) <= 2 * 64, method
            assert len(cand_sketch) <= 64, method


class TestKeyGroupsFastPath:
    def make_table(self):
        return Table.from_dict(
            {
                "key": ["a", "b", "a", None, "c", "b", "d", "e"],
                "v": [1.0, 2.0, 3.0, 4.0, None, 6.0, 7.0, 8.0],
            },
            name="t",
        )

    def test_grouped_sketch_identical_for_every_method(self):
        from repro.sketches.base import KeyGroups

        table = self.make_table()
        for method in available_methods():
            key_groups = KeyGroups(table, "key")
            slow = get_builder(method, 4, 2).sketch_candidate(table, "key", "v")
            fast = get_builder(method, 4, 2).sketch_candidate(
                table, "key", "v", key_groups=key_groups
            )
            assert fast == slow, method

    def test_bundled_methods_opt_into_key_only_selection(self):
        for method in available_methods():
            assert get_builder(method).candidate_selection_key_only, method

    def test_value_dependent_builder_falls_back_to_slow_path(self):
        """A subclass without the key-only opt-in must never go through the
        value-free selection probe, even when key_groups is supplied."""
        from repro.sketches.base import KeyGroups
        from repro.sketches.tupsk import TupleSketchBuilder

        class ValueRankedBuilder(TupleSketchBuilder):
            # Deliberately NOT key-only: ranks by the aggregated values, which
            # the value-free probe would pass as None.
            candidate_selection_key_only = False

            def _select_candidate(self, aggregated):
                ranked = sorted(
                    aggregated, key=lambda key: (aggregated[key], str(key))
                )[: self.capacity]
                return ranked, [aggregated[key] for key in ranked]

        table = Table.from_dict(
            {"key": ["a", "b", "c", "d"], "v": [4.0, 3.0, 2.0, 1.0]}, name="t"
        )
        key_groups = KeyGroups(table, "key")
        assert key_groups.candidate_selection(ValueRankedBuilder(2, 0)) is None
        fast = ValueRankedBuilder(2, 0).sketch_candidate(
            table, "key", "v", key_groups=key_groups
        )
        slow = ValueRankedBuilder(2, 0).sketch_candidate(table, "key", "v")
        assert fast == slow
        assert fast.values == [1.0, 2.0]

    def test_mismatched_key_groups_rejected(self):
        from repro.sketches.base import KeyGroups

        table = self.make_table()
        other = Table.from_dict({"key": ["x"], "v": [1.0]}, name="other")
        key_groups = KeyGroups(other, "key")
        with pytest.raises(SketchError, match="different table"):
            get_builder("TUPSK").sketch_candidate(
                table, "key", "v", key_groups=key_groups
            )

    def test_empty_key_groups_raise(self):
        from repro.sketches.base import KeyGroups

        table = Table.from_dict({"key": [None, None], "v": [1.0, 2.0]}, name="t")
        key_groups = KeyGroups(table, "key")
        with pytest.raises(SketchError, match="no values"):
            get_builder("TUPSK").sketch_candidate(
                table, "key", "v", key_groups=key_groups
            )
