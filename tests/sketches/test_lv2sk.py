"""Tests for the LV2SK (two-level sampling) sketch."""

import numpy as np

from repro.relational.table import Table
from repro.sketches.lv2sk import TwoLevelSketchBuilder


def make_table(keys, values, name="t"):
    return Table.from_dict({"key": keys, "value": values}, name=name)


class TestBaseSide:
    def test_size_upper_bound_2n(self):
        """The paper proves |sketch| <= 2n for LV2SK."""
        rng = np.random.default_rng(0)
        keys = rng.choice([f"k{i}" for i in range(40)], size=5000).tolist()
        table = make_table(keys, rng.normal(size=5000).tolist())
        for capacity in (8, 32, 128):
            sketch = TwoLevelSketchBuilder(capacity=capacity).sketch_base(
                table, "key", "value"
            )
            assert len(sketch) <= 2 * capacity

    def test_size_at_least_n_when_enough_keys(self):
        """|sketch| >= n whenever the key has at least n distinct values."""
        rng = np.random.default_rng(1)
        keys = [f"k{i}" for i in range(3000)]
        table = make_table(keys, rng.normal(size=3000).tolist())
        sketch = TwoLevelSketchBuilder(capacity=256).sketch_base(table, "key", "value")
        assert len(sketch) >= 256

    def test_at_least_one_row_per_selected_key(self):
        rng = np.random.default_rng(2)
        keys = rng.choice([f"k{i}" for i in range(10)], size=1000).tolist()
        table = make_table(keys, rng.normal(size=1000).tolist())
        sketch = TwoLevelSketchBuilder(capacity=8).sketch_base(table, "key", "value")
        # 8 distinct first-level keys requested, 10 available -> 8 selected.
        assert len(sketch.key_id_set()) == 8

    def test_per_key_quota_proportional_to_frequency(self):
        keys = ["heavy"] * 900 + ["light"] * 100
        values = list(range(1000))
        table = make_table(keys, values)
        sketch = TwoLevelSketchBuilder(capacity=100, seed=3).sketch_base(
            table, "key", "value"
        )
        hasher = TwoLevelSketchBuilder(capacity=1, seed=3).hasher
        heavy_count = sum(1 for kid in sketch.key_ids if kid == hasher.key_id("heavy"))
        light_count = sum(1 for kid in sketch.key_ids if kid == hasher.key_id("light"))
        assert heavy_count == 90  # floor(100 * 900/1000)
        assert light_count == 10

    def test_excluded_keys_never_sampled(self, skewed_train_table):
        """First-level selection can exclude keys entirely (the LV2SK weakness)."""
        sketch = TwoLevelSketchBuilder(capacity=3, seed=0).sketch_base(
            skewed_train_table, "key", "target"
        )
        assert len(sketch.key_id_set()) == 3

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        keys = rng.choice([f"k{i}" for i in range(50)], size=2000).tolist()
        table = make_table(keys, rng.normal(size=2000).tolist())
        first = TwoLevelSketchBuilder(capacity=64, seed=11).sketch_base(table, "key", "value")
        second = TwoLevelSketchBuilder(capacity=64, seed=11).sketch_base(table, "key", "value")
        assert first.key_ids == second.key_ids
        assert first.values == second.values


class TestCandidateSide:
    def test_capacity_respected_and_keys_unique(self):
        rng = np.random.default_rng(7)
        keys = rng.choice([f"k{i}" for i in range(800)], size=4000).tolist()
        table = make_table(keys, rng.normal(size=4000).tolist())
        sketch = TwoLevelSketchBuilder(capacity=256).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        assert len(sketch) == 256
        assert len(set(sketch.key_ids)) == 256

    def test_coordinated_with_base_when_keys_unique(self):
        keys = [f"k{i}" for i in range(1000)]
        table = make_table(keys, list(range(1000)))
        builder = TwoLevelSketchBuilder(capacity=64, seed=2)
        base_sketch = builder.sketch_base(table, "key", "value")
        cand_sketch = builder.sketch_candidate(table, "key", "value", agg="first")
        assert base_sketch.key_id_set() == cand_sketch.key_id_set()

    def test_same_first_level_keys_across_tables(self):
        """Coordination: two tables sharing keys select the same minimum-hash keys."""
        shared_keys = [f"k{i}" for i in range(500)]
        left = make_table(shared_keys, list(range(500)), name="left")
        right = make_table(shared_keys, list(range(500)), name="right")
        builder = TwoLevelSketchBuilder(capacity=50, seed=4)
        left_sketch = builder.sketch_candidate(left, "key", "value", agg="avg")
        right_sketch = builder.sketch_candidate(right, "key", "value", agg="avg")
        assert left_sketch.key_id_set() == right_sketch.key_id_set()
