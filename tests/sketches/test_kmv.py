"""Tests for the KMV distinct-value sketch."""

import pytest

from repro.exceptions import SketchError
from repro.sketches.kmv import KMVSketch


class TestConstruction:
    def test_size_bounded_by_capacity(self):
        sketch = KMVSketch(capacity=16).update(f"v{i}" for i in range(1000))
        assert len(sketch) == 16

    def test_duplicates_ignored(self):
        sketch = KMVSketch(capacity=64).update(["a", "a", "b", "b", "b"])
        assert len(sketch) == 2

    def test_none_ignored(self):
        sketch = KMVSketch(capacity=8).update(["a", None, "b"])
        assert len(sketch) == 2

    def test_keeps_minimum_hashes(self):
        full = KMVSketch(capacity=4).update(f"v{i}" for i in range(100))
        all_hashes = sorted(
            KMVSketch(capacity=1000).update(f"v{i}" for i in range(100)).hashes
        )
        assert full.hashes == all_hashes[:4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KMVSketch(capacity=0)

    def test_kth_minimum_of_empty_raises(self):
        with pytest.raises(SketchError):
            KMVSketch().kth_minimum()


class TestDistinctCountEstimate:
    def test_exact_when_not_full(self):
        sketch = KMVSketch(capacity=100).update(f"v{i}" for i in range(30))
        assert sketch.distinct_count_estimate() == 30

    def test_approximate_when_full(self):
        sketch = KMVSketch(capacity=256).update(f"v{i}" for i in range(5000))
        estimate = sketch.distinct_count_estimate()
        assert 0.7 * 5000 < estimate < 1.3 * 5000


class TestSetComparisons:
    def test_jaccard_of_identical_sets(self):
        values = [f"v{i}" for i in range(500)]
        first = KMVSketch.from_values(values, capacity=128)
        second = KMVSketch.from_values(values, capacity=128)
        assert first.jaccard_estimate(second) == pytest.approx(1.0)

    def test_jaccard_of_disjoint_sets(self):
        first = KMVSketch.from_values([f"a{i}" for i in range(500)], capacity=128)
        second = KMVSketch.from_values([f"b{i}" for i in range(500)], capacity=128)
        assert first.jaccard_estimate(second) < 0.05

    def test_jaccard_of_half_overlapping_sets(self):
        first = KMVSketch.from_values([f"v{i}" for i in range(1000)], capacity=256)
        second = KMVSketch.from_values([f"v{i}" for i in range(500, 1500)], capacity=256)
        assert first.jaccard_estimate(second) == pytest.approx(1 / 3, abs=0.1)

    def test_containment_of_subset(self):
        subset = KMVSketch.from_values([f"v{i}" for i in range(200)], capacity=128)
        superset = KMVSketch.from_values([f"v{i}" for i in range(1000)], capacity=128)
        assert subset.containment_estimate(superset) > 0.8

    def test_containment_of_disjoint(self):
        first = KMVSketch.from_values([f"a{i}" for i in range(200)], capacity=64)
        second = KMVSketch.from_values([f"b{i}" for i in range(200)], capacity=64)
        assert first.containment_estimate(second) < 0.1

    def test_different_seeds_not_comparable(self):
        first = KMVSketch.from_values(["a"], seed=0)
        second = KMVSketch.from_values(["a"], seed=1)
        with pytest.raises(SketchError):
            first.jaccard_estimate(second)

    def test_overlap_estimate_scale(self):
        first = KMVSketch.from_values([f"v{i}" for i in range(1000)], capacity=256)
        second = KMVSketch.from_values([f"v{i}" for i in range(500, 1500)], capacity=256)
        overlap = first.overlap_estimate(second)
        assert 300 < overlap < 700
