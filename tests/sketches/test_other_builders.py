"""Tests for the PRISK, INDSK and CSK baseline sketches."""

import numpy as np
import pytest

from repro.relational.table import Table
from repro.sketches.csk import CorrelationSketchBuilder
from repro.sketches.indsk import IndependentSketchBuilder
from repro.sketches.join import join_sketches
from repro.sketches.prisk import PrioritySketchBuilder


def make_table(keys, values, name="t"):
    return Table.from_dict({"key": keys, "value": values}, name=name)


def make_skewed(num_rows=4000, num_keys=200, seed=0):
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_keys + 1)
    weights /= weights.sum()
    keys = rng.choice([f"k{i}" for i in range(num_keys)], size=num_rows, p=weights)
    return make_table(keys.tolist(), rng.normal(size=num_rows).tolist())


class TestPrioritySketch:
    def test_capacity_bound(self):
        table = make_skewed()
        sketch = PrioritySketchBuilder(capacity=64).sketch_base(table, "key", "value")
        assert len(sketch) <= 2 * 64

    def test_frequent_keys_favoured(self):
        table = make_skewed(num_rows=8000, num_keys=400, seed=1)
        frequencies = table.key_frequencies("key")
        heavy_keys = {key for key, count in frequencies.items() if count >= 50}
        builder = PrioritySketchBuilder(capacity=64, seed=2)
        sketch = builder.sketch_base(table, "key", "value")
        selected_ids = sketch.key_id_set()
        heavy_selected = sum(
            1 for key in heavy_keys if builder.hasher.key_id(key) in selected_ids
        )
        assert heavy_selected >= len(heavy_keys) * 0.6

    def test_candidate_side_matches_lv2sk_semantics(self):
        keys = [f"k{i}" for i in range(500)]
        table = make_table(keys, list(range(500)))
        sketch = PrioritySketchBuilder(capacity=50).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        assert len(sketch) == 50
        assert len(set(sketch.key_ids)) == 50

    def test_all_keys_kept_when_few(self, taxi_table):
        sketch = PrioritySketchBuilder(capacity=64).sketch_base(
            taxi_table, "zipcode", "num_trips"
        )
        assert len(sketch.key_id_set()) == 2


class TestIndependentSketch:
    def test_capacity_exact_when_table_larger(self):
        table = make_skewed()
        sketch = IndependentSketchBuilder(capacity=128).sketch_base(table, "key", "value")
        assert len(sketch) == 128

    def test_no_coordination_small_join(self):
        """With unique keys, independent samples rarely overlap (quadratic shrink)."""
        keys = [f"k{i}" for i in range(5000)]
        base = make_table(keys, list(range(5000)), name="base")
        cand = make_table(keys, list(range(5000)), name="cand")
        builder = IndependentSketchBuilder(capacity=256, seed=0)
        base_sketch = builder.sketch_base(base, "key", "value")
        cand_sketch = builder.sketch_candidate(cand, "key", "value", agg="avg")
        joined = join_sketches(base_sketch, cand_sketch)
        # Expected overlap is 256*256/5000 ~ 13; coordinated methods would get 256.
        assert joined.join_size < 60

    def test_deterministic_given_seed(self):
        table = make_skewed(seed=5)
        first = IndependentSketchBuilder(capacity=64, seed=9).sketch_base(table, "key", "value")
        second = IndependentSketchBuilder(capacity=64, seed=9).sketch_base(table, "key", "value")
        assert first.key_ids == second.key_ids


class TestCorrelationSketch:
    def test_one_entry_per_key(self):
        table = make_skewed(num_rows=2000, num_keys=100)
        sketch = CorrelationSketchBuilder(capacity=64).sketch_base(table, "key", "value")
        assert len(sketch) == 64
        assert len(set(sketch.key_ids)) == 64

    def test_first_value_semantics_on_base(self):
        table = make_table(["a", "a", "b"], [10, 20, 30])
        builder = CorrelationSketchBuilder(capacity=8)
        sketch = builder.sketch_base(table, "key", "value")
        mapping = dict(zip(sketch.key_ids, sketch.values))
        assert mapping[builder.hasher.key_id("a")] == 10  # first value seen, not 15/20

    def test_first_value_semantics_on_candidate(self, weather_table):
        builder = CorrelationSketchBuilder(capacity=8)
        sketch = builder.sketch_candidate(weather_table, "date", "temp", agg="avg")
        mapping = dict(zip(sketch.key_ids, sketch.values))
        # CSK ignores the AVG featurization and keeps the first reading (44.1).
        assert mapping[builder.hasher.key_id("2017-01-01")] == pytest.approx(44.1)

    def test_coordinated_join_on_unique_keys(self):
        keys = [f"k{i}" for i in range(3000)]
        base = make_table(keys, list(range(3000)), name="base")
        cand = make_table(keys, list(range(3000)), name="cand")
        builder = CorrelationSketchBuilder(capacity=128, seed=1)
        joined = join_sketches(
            builder.sketch_base(base, "key", "value"),
            builder.sketch_candidate(cand, "key", "value", agg="avg"),
        )
        assert joined.join_size == 128
