"""Tests for streaming (one-pass) TUPSK sketch construction.

Includes the adversarial-collision coverage for the tie-break bugfixes: two
distinct keys whose ``(key, 1)`` tuples collide on the full 32-bit hash must
resolve by first-appearance order on both the streaming and the batch path,
including at the sketch's eviction/selection boundary.
"""

import numpy as np
import pytest

from repro.exceptions import SketchError
from repro.hashing.unit import KeyHasher
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.sketches.estimate import estimate_mi_from_sketches
from repro.sketches.streaming import StreamingBaseSketcher, StreamingCandidateSketcher
from repro.sketches.tupsk import TupleSketchBuilder


def make_table(num_rows=1500, num_keys=60, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.choice([f"k{i}" for i in range(num_keys)], size=num_rows).tolist()
    values = rng.normal(size=num_rows).tolist()
    return Table.from_dict({"key": keys, "value": values}, name="stream")


class TestStreamingBaseSketcher:
    def test_matches_batch_builder_exactly(self):
        table = make_table()
        batch = TupleSketchBuilder(capacity=128, seed=5).sketch_base(table, "key", "value")
        streaming = StreamingBaseSketcher(capacity=128, seed=5)
        streaming.extend(zip(table.column("key"), table.column("value")))
        sketch = streaming.finalize(key_column="key", value_column="value")
        assert sketch.key_ids == batch.key_ids
        assert sketch.values == batch.values
        assert sketch.table_rows == batch.table_rows
        assert sketch.distinct_keys == batch.distinct_keys

    def test_null_keys_skipped(self):
        streaming = StreamingBaseSketcher(capacity=8)
        streaming.add(None, 1.0)
        streaming.add("a", 2.0)
        assert streaming.rows_seen == 1
        assert len(streaming.finalize()) == 1

    def test_incremental_consumption(self):
        """Adding rows in several chunks gives the same result as one pass."""
        table = make_table(seed=2)
        rows = list(zip(table.column("key"), table.column("value")))
        one_pass = StreamingBaseSketcher(capacity=64, seed=1).extend(rows).finalize()
        chunked = StreamingBaseSketcher(capacity=64, seed=1)
        chunked.extend(rows[:500])
        chunked.extend(rows[500:])
        assert chunked.finalize().key_ids == one_pass.key_ids

    def test_empty_stream_rejected(self):
        with pytest.raises(SketchError):
            StreamingBaseSketcher(capacity=8).finalize()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StreamingBaseSketcher(capacity=0)


class TestStreamingCandidateSketcher:
    @pytest.mark.parametrize("agg", ["avg", "sum", "count", "min", "max", "first", "mode"])
    def test_matches_batch_builder(self, agg):
        table = make_table(seed=3)
        batch = TupleSketchBuilder(capacity=32, seed=9).sketch_candidate(
            table, "key", "value", agg=agg
        )
        streaming = StreamingCandidateSketcher(capacity=32, seed=9, agg=agg)
        streaming.extend(zip(table.column("key"), table.column("value")))
        sketch = streaming.finalize(key_column="key", value_column="value")
        assert sketch.key_ids == batch.key_ids
        assert sketch.values == pytest.approx(batch.values)
        assert sketch.aggregate == batch.aggregate
        assert sketch.value_dtype is batch.value_dtype

    def test_missing_values_handled_like_batch(self):
        keys = ["a", "a", "b", "b", "c"]
        values = [1.0, None, None, None, 5.0]
        table = Table.from_dict({"key": keys, "value": values})
        batch = TupleSketchBuilder(capacity=8, seed=0).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        streaming = StreamingCandidateSketcher(capacity=8, seed=0, agg="avg")
        streaming.extend(zip(keys, values))
        assert streaming.finalize().values == batch.values

    def test_streaming_pair_supports_mi_estimation(self):
        rng = np.random.default_rng(4)
        keys = [f"k{i}" for i in range(3000)]
        x = rng.normal(size=3000)
        y = x + 0.3 * rng.normal(size=3000)
        base = StreamingBaseSketcher(capacity=256, seed=2)
        base.extend(zip(keys, y.tolist()))
        cand = StreamingCandidateSketcher(capacity=256, seed=2, agg="avg")
        cand.extend(zip(keys, x.tolist()))
        estimate = estimate_mi_from_sketches(base.finalize(), cand.finalize())
        assert estimate.join_size == 256
        assert estimate.mi > 0.3

    def test_empty_stream_rejected(self):
        with pytest.raises(SketchError):
            StreamingCandidateSketcher(capacity=8).finalize()


class TestBugfixes:
    """Regression coverage for the streaming-vs-batch equivalence bugs."""

    def test_base_table_rows_counts_null_key_rows(self):
        table = Table.from_dict({"k": ["a", None, "b"], "v": [1.0, 2.0, 3.0]})
        batch = TupleSketchBuilder(capacity=8).sketch_base(table, "k", "v")
        streaming = StreamingBaseSketcher(capacity=8)
        streaming.extend(zip(table.column("k"), table.column("v")))
        sketch = streaming.finalize(key_column="k", value_column="v")
        assert batch.table_rows == sketch.table_rows == 3
        assert streaming.rows_seen == 2  # the docstring'd non-null counter
        assert sketch.distinct_keys == batch.distinct_keys == 2

    def test_base_dtype_inferred_from_whole_column(self):
        # Mixed int/float values: the batch path coerces the column to FLOAT
        # before sketching; the streamer must report (and coerce to) the
        # same dtype instead of echoing raw first-seen types.
        table = Table.from_dict({"k": ["a", "b"], "v": [1, 2.5]})
        batch = TupleSketchBuilder(capacity=8).sketch_base(table, "k", "v")
        streaming = StreamingBaseSketcher(capacity=8)
        streaming.extend([("a", 1), ("b", 2.5)])
        sketch = streaming.finalize(key_column="k", value_column="v")
        assert sketch == batch
        assert sketch.value_dtype is DType.FLOAT
        assert [type(value) for value in sketch.values] == [float, float]

    def test_candidate_dtype_inferred_from_aggregated_column(self):
        # The old streamer inferred from the *first* non-None value: a
        # [1, 2.5] stream declared INT where the batch path declares FLOAT.
        table = Table.from_dict({"k": ["a", "a"], "v": [1, 2.5]})
        batch = TupleSketchBuilder(capacity=8).sketch_candidate(
            table, "k", "v", agg="sum"
        )
        streaming = StreamingCandidateSketcher(capacity=8, agg="sum")
        streaming.extend([("a", 1), ("a", 2.5)])
        sketch = streaming.finalize(key_column="k", value_column="v")
        assert sketch == batch
        assert sketch.value_dtype is DType.FLOAT
        assert sketch.values == [3.5]


def _tuple_unit_collision(seed=0, limit=400_000):
    """Two distinct keys whose ``(key, 1)`` tuples share one 32-bit hash."""
    hasher = KeyHasher(seed=seed)
    keys = [f"c{i}" for i in range(limit)]
    units = hasher.tuple_unit_many(keys, [1] * limit)
    seen: dict = {}
    for key, unit in zip(keys, units):
        unit = float(unit)
        if unit in seen:
            return seen[unit], key
        seen[unit] = key
    pytest.skip(f"no 32-bit tuple-hash collision among {limit} keys")


class TestAdversarialCollisions:
    """Hash-collision ties must resolve identically on both paths."""

    @pytest.fixture(scope="class")
    def collision(self):
        return _tuple_unit_collision()

    def test_candidate_selection_tie_break(self, collision):
        first, second = collision
        hasher = KeyHasher(seed=0)
        fillers = [f"f{i}" for i in range(40)]
        tied_unit = hasher.tuple_unit(first, 1)
        # Capacity lands the boundary exactly on the tied pair: every key
        # ranked strictly below the tie fits, plus one slot the first-
        # appearing collider must win.
        capacity = sum(
            1 for key in fillers if hasher.tuple_unit(key, 1) < tied_unit
        ) + 1
        for order in ([first, second], [second, first]):
            keys = order + fillers
            table = Table.from_dict(
                {"k": keys, "v": [float(i) for i in range(len(keys))]}
            )
            for vectorized in (False, True):
                builder = TupleSketchBuilder(
                    capacity=capacity, seed=0, vectorized=vectorized
                )
                batch = builder.sketch_candidate(table, "k", "v", agg="first")
                streaming = StreamingCandidateSketcher(
                    capacity=capacity, seed=0, agg="first", vectorized=vectorized
                )
                streaming.extend(zip(table.column("k"), table.column("v")))
                sketch = streaming.finalize(key_column="k", value_column="v")
                assert sketch == batch
            # First appearance wins the tied slot.
            winner_id = hasher.key_id(order[0])
            assert winner_id in sketch.key_ids
            assert hasher.key_id(order[1]) not in sketch.key_ids

    def test_base_heap_eviction_tie_break(self, collision):
        first, second = collision
        hasher = KeyHasher(seed=0)
        fillers = [f"f{i}" for i in range(60)]
        tied_unit = hasher.tuple_unit(first, 1)
        # Exactly one of the colliding rows survives: eviction by a later,
        # smaller-hash row must push out the *later* of the tied pair (the
        # old heap kept the later row instead).
        capacity = sum(
            1 for key in fillers if hasher.tuple_unit(key, 1) < tied_unit
        ) + 1
        keys = [first, second] + fillers
        table = Table.from_dict(
            {"k": keys, "v": [float(i) for i in range(len(keys))]}
        )
        batch = TupleSketchBuilder(capacity=capacity, seed=0).sketch_base(
            table, "k", "v"
        )
        streaming = StreamingBaseSketcher(capacity=capacity, seed=0)
        streaming.extend(zip(table.column("k"), table.column("v")))
        sketch = streaming.finalize(key_column="k", value_column="v")
        assert sketch == batch
        assert hasher.key_id(first) in sketch.key_ids
        assert hasher.key_id(second) not in sketch.key_ids
