"""Tests for streaming (one-pass) TUPSK sketch construction."""

import numpy as np
import pytest

from repro.exceptions import SketchError
from repro.relational.table import Table
from repro.sketches.estimate import estimate_mi_from_sketches
from repro.sketches.streaming import StreamingBaseSketcher, StreamingCandidateSketcher
from repro.sketches.tupsk import TupleSketchBuilder


def make_table(num_rows=1500, num_keys=60, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.choice([f"k{i}" for i in range(num_keys)], size=num_rows).tolist()
    values = rng.normal(size=num_rows).tolist()
    return Table.from_dict({"key": keys, "value": values}, name="stream")


class TestStreamingBaseSketcher:
    def test_matches_batch_builder_exactly(self):
        table = make_table()
        batch = TupleSketchBuilder(capacity=128, seed=5).sketch_base(table, "key", "value")
        streaming = StreamingBaseSketcher(capacity=128, seed=5)
        streaming.extend(zip(table.column("key"), table.column("value")))
        sketch = streaming.finalize(key_column="key", value_column="value")
        assert sketch.key_ids == batch.key_ids
        assert sketch.values == batch.values
        assert sketch.table_rows == batch.table_rows
        assert sketch.distinct_keys == batch.distinct_keys

    def test_null_keys_skipped(self):
        streaming = StreamingBaseSketcher(capacity=8)
        streaming.add(None, 1.0)
        streaming.add("a", 2.0)
        assert streaming.rows_seen == 1
        assert len(streaming.finalize()) == 1

    def test_incremental_consumption(self):
        """Adding rows in several chunks gives the same result as one pass."""
        table = make_table(seed=2)
        rows = list(zip(table.column("key"), table.column("value")))
        one_pass = StreamingBaseSketcher(capacity=64, seed=1).extend(rows).finalize()
        chunked = StreamingBaseSketcher(capacity=64, seed=1)
        chunked.extend(rows[:500])
        chunked.extend(rows[500:])
        assert chunked.finalize().key_ids == one_pass.key_ids

    def test_empty_stream_rejected(self):
        with pytest.raises(SketchError):
            StreamingBaseSketcher(capacity=8).finalize()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StreamingBaseSketcher(capacity=0)


class TestStreamingCandidateSketcher:
    @pytest.mark.parametrize("agg", ["avg", "sum", "count", "min", "max", "first", "mode"])
    def test_matches_batch_builder(self, agg):
        table = make_table(seed=3)
        batch = TupleSketchBuilder(capacity=32, seed=9).sketch_candidate(
            table, "key", "value", agg=agg
        )
        streaming = StreamingCandidateSketcher(capacity=32, seed=9, agg=agg)
        streaming.extend(zip(table.column("key"), table.column("value")))
        sketch = streaming.finalize(key_column="key", value_column="value")
        assert sketch.key_ids == batch.key_ids
        assert sketch.values == pytest.approx(batch.values)
        assert sketch.aggregate == batch.aggregate
        assert sketch.value_dtype is batch.value_dtype

    def test_missing_values_handled_like_batch(self):
        keys = ["a", "a", "b", "b", "c"]
        values = [1.0, None, None, None, 5.0]
        table = Table.from_dict({"key": keys, "value": values})
        batch = TupleSketchBuilder(capacity=8, seed=0).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        streaming = StreamingCandidateSketcher(capacity=8, seed=0, agg="avg")
        streaming.extend(zip(keys, values))
        assert streaming.finalize().values == batch.values

    def test_streaming_pair_supports_mi_estimation(self):
        rng = np.random.default_rng(4)
        keys = [f"k{i}" for i in range(3000)]
        x = rng.normal(size=3000)
        y = x + 0.3 * rng.normal(size=3000)
        base = StreamingBaseSketcher(capacity=256, seed=2)
        base.extend(zip(keys, y.tolist()))
        cand = StreamingCandidateSketcher(capacity=256, seed=2, agg="avg")
        cand.extend(zip(keys, x.tolist()))
        estimate = estimate_mi_from_sketches(base.finalize(), cand.finalize())
        assert estimate.join_size == 256
        assert estimate.mi > 0.3

    def test_empty_stream_rejected(self):
        with pytest.raises(SketchError):
            StreamingCandidateSketcher(capacity=8).finalize()
