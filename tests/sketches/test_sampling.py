"""Tests for the sampling primitives used by the sketch builders."""

import numpy as np
import pytest

from repro.sketches.sampling import (
    bernoulli_sample,
    priority_sample,
    reservoir_sample,
    uniform_sample_without_replacement,
)


class TestReservoirSample:
    def test_size_bounded_by_capacity(self, rng):
        sample = reservoir_sample(range(1000), 50, rng)
        assert len(sample) == 50

    def test_returns_everything_when_small(self, rng):
        assert sorted(reservoir_sample(range(5), 50, rng)) == list(range(5))

    def test_all_items_from_stream(self, rng):
        sample = reservoir_sample(range(200), 20, rng)
        assert set(sample) <= set(range(200))
        assert len(set(sample)) == 20

    def test_approximately_uniform(self):
        counts = np.zeros(20)
        for seed in range(2000):
            for item in reservoir_sample(range(20), 5, seed):
                counts[item] += 1
        expected = 2000 * 5 / 20
        assert np.all(np.abs(counts - expected) < 0.25 * expected)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            reservoir_sample([1, 2], -1)


class TestBernoulliSample:
    def test_rate_bounds(self, rng):
        assert bernoulli_sample([1, 2, 3], 1.0, rng) == [1, 2, 3]
        assert bernoulli_sample([1, 2, 3], 0.0, rng) == []

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_sample([1], 1.5)

    def test_expected_size(self, rng):
        sizes = [len(bernoulli_sample(list(range(1000)), 0.3, rng)) for _ in range(30)]
        assert abs(np.mean(sizes) - 300) < 30

    def test_preserves_order(self, rng):
        sample = bernoulli_sample(list(range(100)), 0.5, rng)
        assert sample == sorted(sample)


class TestPrioritySample:
    def test_size_capped(self, rng):
        items = list(range(100))
        weights = [1.0] * 100
        assert len(priority_sample(items, weights, 10, rng)) == 10

    def test_returns_all_when_capacity_exceeds(self, rng):
        assert priority_sample([1, 2], [1.0, 1.0], 10, rng) == [1, 2]

    def test_heavier_items_selected_more_often(self):
        heavy_selected = 0
        for seed in range(500):
            items = list(range(10))
            weights = [100.0] + [1.0] * 9
            sample = priority_sample(items, weights, 3, seed)
            heavy_selected += 0 in sample
        assert heavy_selected > 450

    def test_validation(self):
        with pytest.raises(ValueError):
            priority_sample([1], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            priority_sample([1, 2], [1.0, 0.0], 1)
        with pytest.raises(ValueError):
            priority_sample([1, 2], [1.0, 2.0], -1)


class TestUniformSampleWithoutReplacement:
    def test_no_duplicates(self, rng):
        sample = uniform_sample_without_replacement(list(range(100)), 30, rng)
        assert len(sample) == len(set(sample)) == 30

    def test_capacity_larger_than_population(self, rng):
        assert uniform_sample_without_replacement([1, 2, 3], 10, rng) == [1, 2, 3]

    def test_deterministic_given_seed(self):
        first = uniform_sample_without_replacement(list(range(50)), 10, 3)
        second = uniform_sample_without_replacement(list(range(50)), 10, 3)
        assert first == second
