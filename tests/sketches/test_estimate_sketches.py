"""Tests for MI estimation on top of sketch joins."""

import math

import pytest

from repro.exceptions import InsufficientSamplesError
from repro.estimators.mle import MLEEstimator
from repro.relational.table import Table
from repro.sketches.base import SketchSide, build_sketch
from repro.sketches.estimate import estimate_mi_from_join, estimate_mi_from_sketches
from repro.sketches.join import join_sketches
from repro.synthetic.benchmark import generate_trinomial_dataset
from repro.synthetic.decompose import KeyGeneration


def sketch_pair_from_dataset(dataset, method="TUPSK", capacity=256, seed=0):
    base_sketch = build_sketch(
        dataset.train_table, "key", "target",
        method=method, side=SketchSide.BASE, capacity=capacity, seed=seed,
    )
    cand_sketch = build_sketch(
        dataset.cand_table, "key", "feature",
        method=method, side=SketchSide.CANDIDATE, capacity=capacity, seed=seed,
    )
    return base_sketch, cand_sketch


class TestEstimateFromSketches:
    def test_estimator_autoselected_from_dtypes(self):
        base = Table.from_dict({"key": [f"k{i}" for i in range(300)],
                                "target": ["hot", "cold"] * 150})
        cand = Table.from_dict({"key": [f"k{i}" for i in range(300)],
                                "feature": ["sunny", "rainy"] * 150})
        base_sketch = build_sketch(base, "key", "target", capacity=128)
        cand_sketch = build_sketch(
            cand, "key", "feature", side=SketchSide.CANDIDATE, capacity=128, agg="mode"
        )
        estimate = estimate_mi_from_sketches(base_sketch, cand_sketch)
        assert estimate.estimator == "MLE"
        assert estimate.mi == pytest.approx(math.log(2), abs=0.05)

    def test_explicit_estimator_used(self):
        dataset = generate_trinomial_dataset(16, 3000, target_mi=1.0, random_state=0)
        base_sketch, cand_sketch = sketch_pair_from_dataset(dataset)
        estimate = estimate_mi_from_sketches(
            base_sketch, cand_sketch, estimator=MLEEstimator()
        )
        assert estimate.estimator == "MLE"
        assert estimate.join_size == 256

    def test_estimate_close_to_truth_on_easy_dataset(self):
        dataset = generate_trinomial_dataset(
            16, 10_000, target_mi=1.5, key_generation=KeyGeneration.KEY_DEP, random_state=1
        )
        base_sketch, cand_sketch = sketch_pair_from_dataset(dataset, capacity=512)
        estimate = estimate_mi_from_sketches(base_sketch, cand_sketch)
        assert estimate.mi == pytest.approx(dataset.true_mi, abs=0.35)

    def test_min_join_size_enforced(self):
        base = Table.from_dict({"key": ["a", "b"], "target": [1.0, 2.0]})
        cand = Table.from_dict({"key": ["x", "y"], "feature": [1.0, 2.0]})
        base_sketch = build_sketch(base, "key", "target", capacity=8)
        cand_sketch = build_sketch(cand, "key", "feature", side=SketchSide.CANDIDATE, capacity=8)
        with pytest.raises(InsufficientSamplesError):
            estimate_mi_from_sketches(base_sketch, cand_sketch, min_join_size=10)

    def test_estimate_from_join_result(self):
        dataset = generate_trinomial_dataset(16, 2000, target_mi=0.8, random_state=3)
        base_sketch, cand_sketch = sketch_pair_from_dataset(dataset, capacity=128)
        join_result = join_sketches(base_sketch, cand_sketch)
        estimate = estimate_mi_from_join(join_result, estimator=MLEEstimator())
        assert estimate.join_size == join_result.join_size
        assert estimate.mi >= 0.0

    def test_result_provenance_fields(self):
        dataset = generate_trinomial_dataset(16, 2000, target_mi=0.8, random_state=4)
        base_sketch, cand_sketch = sketch_pair_from_dataset(dataset, capacity=128)
        estimate = estimate_mi_from_sketches(base_sketch, cand_sketch)
        assert estimate.base_sketch_size == len(base_sketch)
        assert estimate.candidate_sketch_size == len(cand_sketch)
        assert float(estimate) == estimate.mi
