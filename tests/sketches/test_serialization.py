"""Tests for sketch serialization."""

import json

import pytest

from repro.exceptions import SketchError
from repro.sketches.base import SketchSide, build_sketch
from repro.sketches.estimate import estimate_mi_from_sketches
from repro.sketches.serialization import (
    load_sketch,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)


@pytest.fixture()
def sample_sketches(correlated_pair):
    base, cand = correlated_pair
    base_sketch = build_sketch(base, "key", "target", capacity=64, seed=3)
    cand_sketch = build_sketch(
        cand, "key", "feature", side=SketchSide.CANDIDATE, capacity=64, seed=3
    )
    return base_sketch, cand_sketch


class TestDictRoundtrip:
    def test_roundtrip_preserves_everything(self, sample_sketches):
        base_sketch, _ = sample_sketches
        restored = sketch_from_dict(sketch_to_dict(base_sketch))
        assert restored.method == base_sketch.method
        assert restored.side == base_sketch.side
        assert restored.seed == base_sketch.seed
        assert restored.key_ids == base_sketch.key_ids
        assert restored.values == base_sketch.values
        assert restored.value_dtype is base_sketch.value_dtype
        assert restored.table_rows == base_sketch.table_rows

    def test_document_is_json_serializable(self, sample_sketches):
        base_sketch, _ = sample_sketches
        document = sketch_to_dict(base_sketch)
        assert json.loads(json.dumps(document)) == document

    def test_unsupported_version_rejected(self, sample_sketches):
        base_sketch, _ = sample_sketches
        document = sketch_to_dict(base_sketch)
        document["format_version"] = 99
        with pytest.raises(SketchError):
            sketch_from_dict(document)

    def test_malformed_document_rejected(self):
        with pytest.raises(SketchError):
            sketch_from_dict({"format_version": 1, "method": "TUPSK"})

    def test_stale_hash_encoding_rejected(self, sample_sketches):
        """Sketches persisted before the length-prefixed tuple encoding
        (documents without a hash_encoding stamp) must be rebuilt."""
        base_sketch, _ = sample_sketches
        document = sketch_to_dict(base_sketch)
        del document["hash_encoding"]
        with pytest.raises(SketchError, match="hash-encoding.*rebuild"):
            sketch_from_dict(document)


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path, sample_sketches):
        base_sketch, cand_sketch = sample_sketches
        base_path = tmp_path / "base.sketch.json"
        cand_path = tmp_path / "cand.sketch.json"
        save_sketch(base_sketch, base_path)
        save_sketch(cand_sketch, cand_path)
        restored_base = load_sketch(base_path)
        restored_cand = load_sketch(cand_path)
        # The restored sketches are fully usable: join + estimate as usual.
        original = estimate_mi_from_sketches(base_sketch, cand_sketch)
        restored = estimate_mi_from_sketches(restored_base, restored_cand)
        assert restored.mi == pytest.approx(original.mi)
        assert restored.join_size == original.join_size

    def test_loading_garbage_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json at all", encoding="utf-8")
        with pytest.raises(SketchError):
            load_sketch(path)

    def test_candidate_metadata_preserved(self, tmp_path, sample_sketches):
        _, cand_sketch = sample_sketches
        path = tmp_path / "cand.json"
        save_sketch(cand_sketch, path)
        restored = load_sketch(path)
        assert restored.aggregate == "avg"
        assert restored.side == SketchSide.CANDIDATE
