"""Property-based streaming-vs-batch equivalence of sketch construction.

The :mod:`repro.ingest` sketchers promise that a sketch built from chunked
one-pass consumption is **bit-identical** to the batch builder run over the
materialized table — for every method, every aggregate, any chunk split, and
adversarial columns (null/NaN/bigint/unicode keys, ``None``-heavy and
mixed-typed values).  All of it runs under the current canonical hash
encoding (``HASH_ENCODING_VERSION == 2``), and the persisted artifact check
asserts byte-identical index stores built via ``add_table_stream`` vs
``add_table``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.builder import IndexBuilder
from repro.discovery.persistence import save_index
from repro.engine import EngineConfig, SketchEngine
from repro.ingest import InMemoryReader
from repro.relational.table import Table
from repro.sketches.base import get_builder
from repro.sketches.serialization import HASH_ENCODING_VERSION
from repro.store import load_npz

METHODS = ("TUPSK", "CSK", "LV2SK", "PRISK", "INDSK")

# Join-key columns: nulls, NaN (missing after coercion), bigints beyond
# int64, unicode text, and floats that canonicalize onto ints (3.0 == 3).
key_columns = st.one_of(
    st.lists(
        st.one_of(st.integers(-(2**80), 2**80), st.none()),
        min_size=1, max_size=50,
    ),
    st.lists(st.one_of(st.text(max_size=12), st.none()), min_size=1, max_size=50),
    st.lists(
        st.one_of(st.floats(allow_nan=True, allow_infinity=False), st.none()),
        min_size=1, max_size=50,
    ),
)

# Numeric-only value pools (for AVG/SUM/MEDIAN, which reject strings).
numeric_values = st.one_of(
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=True, allow_infinity=False, width=32),
    st.none(),
)

# Anything-goes value pools for the order/frequency-based aggregates.
mixed_values = st.one_of(
    numeric_values,
    st.text(max_size=8),
    st.booleans(),
)

NUMERIC_ONLY = ("avg", "sum", "median")
MIXED_OK = ("count", "min", "max", "first", "mode")


def value_strategy(agg):
    return numeric_values if agg in NUMERIC_ONLY else mixed_values


def assert_sketches_bit_identical(streamed, batch):
    assert streamed == batch
    # Dataclass equality treats 1 == 1.0; the typed store pools do not.
    assert [type(value) for value in streamed.values] == [
        type(value) for value in batch.values
    ]
    assert streamed.value_dtype is batch.value_dtype


@st.composite
def streaming_case(draw, agg_pool):
    keys = draw(key_columns)
    agg = draw(st.sampled_from(agg_pool))
    values = draw(
        st.lists(value_strategy(agg), min_size=len(keys), max_size=len(keys))
    )
    table = Table.from_dict({"key": keys, "value": values}, name="t")
    capacity = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 50))
    chunk_size = draw(st.integers(1, len(keys) + 5))
    return table, agg, capacity, seed, chunk_size


class TestStreamingEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(case=streaming_case(("avg",)))
    @pytest.mark.parametrize("method", METHODS)
    def test_base_side(self, method, case):
        table, _, capacity, seed, chunk_size = case
        if all(key is None for key in table.column("key").values):
            return  # nothing sketchable; both paths raise identically
        engine = SketchEngine(
            EngineConfig(method=method, capacity=capacity, seed=seed)
        )
        batch = get_builder(method, capacity=capacity, seed=seed).sketch_base(
            table, "key", "value"
        )
        streamed = engine.sketch_stream(
            InMemoryReader(table, chunk_size), "key", "value", side="base"
        )
        assert_sketches_bit_identical(streamed, batch)

    @settings(max_examples=30, deadline=None)
    @given(case=streaming_case(NUMERIC_ONLY + MIXED_OK))
    @pytest.mark.parametrize("method", METHODS)
    def test_candidate_side(self, method, case):
        table, agg, capacity, seed, chunk_size = case
        if all(key is None for key in table.column("key").values):
            return
        engine = SketchEngine(
            EngineConfig(method=method, capacity=capacity, seed=seed)
        )
        batch = get_builder(method, capacity=capacity, seed=seed).sketch_candidate(
            table, "key", "value", agg=agg
        )
        streamed = engine.sketch_stream(
            InMemoryReader(table, chunk_size),
            "key",
            "value",
            side="candidate",
            agg=agg,
        )
        assert_sketches_bit_identical(streamed, batch)

    @settings(max_examples=20, deadline=None)
    @given(case=streaming_case(("count", "min", "first")), split=st.integers(0, 50))
    def test_candidate_merge_matches_single_stream(self, case, split):
        table, agg, capacity, seed, _ = case
        if all(key is None for key in table.column("key").values):
            return
        rows = list(
            zip(table.column("key").values, table.column("value").values)
        )
        split = min(split, len(rows))
        engine = SketchEngine(EngineConfig(capacity=capacity, seed=seed))
        whole = engine.stream_sketcher("candidate", agg=agg).extend(rows)
        left = engine.stream_sketcher("candidate", agg=agg).extend(rows[:split])
        right = engine.stream_sketcher("candidate", agg=agg).extend(rows[split:])
        assert left.merge(right).finalize() == whole.finalize()


def _lake_tables():
    rng = np.random.default_rng(17)
    keys = [f"k{i:04d}" for i in range(70)]
    tables = []
    for position in range(4):
        row_keys = [
            None if rng.random() < 0.03 else keys[i]
            for i in rng.integers(0, 70, size=160)
        ]
        tables.append(
            Table.from_dict(
                {
                    "key": row_keys,
                    "metric": rng.normal(size=160).tolist(),
                    "label": ["ab"[int(i) % 2] for i in rng.integers(0, 70, size=160)],
                },
                name=f"lake{position}",
            )
        )
    return tables


class TestPersistedIndexEquivalence:
    def test_streamed_indexes_are_byte_identical_to_batch(self, tmp_path):
        """``add_table_stream`` never leaks into persisted artifacts.

        Both index documents and every array of the columnar store must
        match byte for byte between a batch-registered and a chunk-streamed
        build of the same lake.  (The ``.npz`` container embeds zip
        timestamps, so the comparison is per stored array.)
        """
        assert HASH_ENCODING_VERSION == 2
        tables = _lake_tables()
        config = EngineConfig(capacity=48, seed=5)

        batch_builder = IndexBuilder(config, num_shards=4)
        for table in tables:
            batch_builder.add_table(table, ["key"])
        batch_dir = tmp_path / "batch"
        save_index(batch_builder.build(), batch_dir)

        stream_builder = IndexBuilder(config, num_shards=4)
        for table in tables:
            stream_builder.add_table_stream(InMemoryReader(table, 37), ["key"])
        stream_dir = tmp_path / "stream"
        save_index(stream_builder.build(), stream_dir)

        batch_document = json.loads((batch_dir / "index.json").read_text())
        stream_document = json.loads((stream_dir / "index.json").read_text())
        assert batch_document == stream_document

        batch_store = load_npz(batch_dir / "sketches.npz")
        stream_store = load_npz(stream_dir / "sketches.npz")
        assert batch_store._manifest == stream_store._manifest
        assert set(batch_store._arrays) == set(stream_store._arrays)
        for name in batch_store._arrays:
            left, right = batch_store.array(name), stream_store.array(name)
            assert left.dtype == right.dtype, name
            assert left.tobytes() == right.tobytes(), name
