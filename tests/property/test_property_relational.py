"""Property-based tests for the relational substrate (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.aggregate import aggregate_values, group_by_aggregate
from repro.relational.column import Column
from repro.relational.dtypes import DType, infer_column_dtype
from repro.relational.join import inner_join, join_cardinality, left_outer_join
from repro.relational.table import Table

# Small alphabets keep joins interesting (lots of matches and repeats).
keys = st.sampled_from(["a", "b", "c", "d", "e"])
numbers = st.integers(min_value=-1000, max_value=1000)


@st.composite
def key_value_table(draw, name="t", min_rows=0, max_rows=30):
    size = draw(st.integers(min_value=min_rows, max_value=max_rows))
    key_values = draw(st.lists(keys, min_size=size, max_size=size))
    values = draw(st.lists(numbers, min_size=size, max_size=size))
    return Table.from_dict({"k": key_values, "v": values}, name=name)


class TestColumnProperties:
    @given(st.lists(st.one_of(numbers, st.none()), max_size=50))
    def test_null_count_plus_non_null_equals_length(self, values):
        column = Column("c", values)
        assert column.null_count() + len(column.non_null_values()) == len(column)

    @given(st.lists(numbers, min_size=1, max_size=50))
    def test_distinct_count_bounds(self, values):
        column = Column("c", values)
        assert 1 <= column.distinct_count() <= len(values)

    @given(st.lists(st.one_of(numbers, st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=5)), max_size=30))
    def test_inferred_dtype_is_stable_under_coercion(self, values):
        """Coercing values to the inferred dtype and re-inferring gives the same dtype."""
        dtype = infer_column_dtype(values)
        column = Column("c", values, dtype=dtype)
        reinferred = infer_column_dtype(column.values)
        if reinferred is not DType.MISSING:
            assert reinferred is dtype


class TestAggregateProperties:
    @given(st.lists(numbers, min_size=1, max_size=40))
    def test_min_le_avg_le_max(self, values):
        assert aggregate_values(values, "min") <= aggregate_values(values, "avg")
        assert aggregate_values(values, "avg") <= aggregate_values(values, "max")

    @given(st.lists(numbers, min_size=1, max_size=40))
    def test_mode_is_an_observed_value(self, values):
        assert aggregate_values(values, "mode") in values

    @given(st.lists(keys, min_size=1, max_size=40), st.lists(numbers, min_size=1, max_size=40))
    def test_group_counts_sum_to_non_null_rows(self, key_values, values):
        size = min(len(key_values), len(values))
        key_values, values = key_values[:size], values[:size]
        grouped = group_by_aggregate(key_values, values, "count")
        assert sum(grouped.values()) == size


class TestJoinProperties:
    @settings(max_examples=60, deadline=None)
    @given(key_value_table(name="left"), key_value_table(name="right"))
    def test_left_join_row_count_with_unique_right_keys(self, left, right):
        aggregated = right.group_by("k", "v", "avg") if right.num_rows else right
        if right.num_rows == 0:
            return
        joined = left_outer_join(left, aggregated, "k", expect_unique_right_keys=True)
        assert joined.num_rows == left.num_rows

    @settings(max_examples=60, deadline=None)
    @given(key_value_table(name="left"), key_value_table(name="right"))
    def test_inner_join_size_matches_count_formula(self, left, right):
        if left.num_rows == 0 or right.num_rows == 0:
            return
        joined = inner_join(left, right, "k")
        left_counts = Counter(left.column("k").non_null_values())
        right_counts = Counter(right.column("k").non_null_values())
        expected = sum(left_counts[key] * right_counts.get(key, 0) for key in left_counts)
        assert joined.num_rows == expected
        assert join_cardinality(left, right, "k") == expected

    @settings(max_examples=60, deadline=None)
    @given(key_value_table(name="left"), key_value_table(name="right"))
    def test_inner_join_subset_of_left_outer_join_pairs(self, left, right):
        if left.num_rows == 0 or right.num_rows == 0:
            return
        inner = inner_join(left, right, "k")
        outer = left_outer_join(left, right, "k")
        inner_pairs = Counter(zip(inner.column("v"), inner.column("v_right")))
        outer_pairs = Counter(
            (v, w)
            for v, w in zip(outer.column("v"), outer.column("v_right"))
            if w is not None
        )
        assert inner_pairs == outer_pairs
