"""Property tests: ``load_npz(save_npz(sketch)) == sketch`` for every method.

The columnar store must round-trip any sketch the library can build —
every sketching method, both sides, and every value shape the pools
distinguish (floats, int64 and arbitrary-precision integers, strings, and
mixed values with ``None``/booleans).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.dtypes import DType
from repro.sketches.base import Sketch, SketchSide, available_methods
from repro.store import load_npz, save_npz

# NaN is excluded because Sketch equality is plain ``==`` (NaN != NaN); the
# unit tests cover NaN round-tripping via math.isnan.
scalar_values = st.one_of(
    st.floats(allow_nan=False),
    st.integers(),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

# Homogeneous lists exercise the typed pools; heterogeneous ones the JSON pool.
value_lists = st.one_of(
    st.lists(st.floats(allow_nan=False), max_size=12),
    st.lists(st.integers(min_value=-(2**70), max_value=2**70), max_size=12),
    st.lists(st.text(max_size=12), max_size=12),
    st.lists(scalar_values, max_size=12),
)


@st.composite
def sketches(draw):
    values = draw(value_lists)
    return Sketch(
        method=draw(st.sampled_from(available_methods())),
        side=draw(st.sampled_from([SketchSide.BASE, SketchSide.CANDIDATE])),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        capacity=max(len(values), 1),
        key_ids=[draw(st.integers(min_value=0, max_value=2**32 - 1)) for _ in values],
        values=values,
        value_dtype=draw(st.sampled_from(list(DType))),
        table_rows=draw(st.integers(min_value=len(values), max_value=10**6)),
        distinct_keys=draw(st.integers(min_value=len(values), max_value=10**6)),
        key_column=draw(st.text(max_size=8)),
        value_column=draw(st.text(max_size=8)),
        table_name=draw(st.text(max_size=8)),
        aggregate=draw(st.sampled_from([None, "avg", "mode", "first", "count"])),
    )


@given(sketch=sketches())
@settings(max_examples=60, deadline=None)
def test_single_sketch_round_trip(sketch, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "one.npz"
    loaded = load_npz(save_npz(path, sketch))[0]
    assert loaded == sketch
    # Equality treats 1 == 1.0 == True; the pools must also preserve types.
    assert [type(value) for value in loaded.values] == [
        type(value) for value in sketch.values
    ]


@given(batch=st.lists(sketches(), max_size=5))
@settings(max_examples=25, deadline=None)
def test_store_round_trip_preserves_order(batch, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "many.npz"
    for mmap in (False, True):
        store = load_npz(save_npz(path, batch), mmap=mmap)
        assert store.sketches() == batch
