"""Property-based tests for the hashing substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.fibonacci import fibonacci_hash_unit
from repro.hashing.murmur3 import murmur3_32
from repro.hashing.unit import KeyHasher, canonical_bytes, hash_key, hash_key_unit

hashable_keys = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.none(),
)


class TestMurmurProperties:
    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
    def test_output_always_32_bit(self, data, seed):
        assert 0 <= murmur3_32(data, seed) <= 0xFFFFFFFF

    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert murmur3_32(data) == murmur3_32(data)


class TestUnitHashProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_fibonacci_in_unit_interval(self, value):
        assert 0.0 <= fibonacci_hash_unit(value) < 1.0

    @given(hashable_keys)
    def test_key_hash_in_unit_interval(self, key):
        assert 0.0 <= hash_key_unit(key) < 1.0

    @given(hashable_keys, hashable_keys)
    def test_equal_keys_equal_hashes(self, first, second):
        if first == second and type(first) is type(second):
            assert hash_key(first) == hash_key(second)

    @given(hashable_keys)
    def test_canonical_bytes_deterministic(self, key):
        assert canonical_bytes(key) == canonical_bytes(key)

    @given(hashable_keys, st.integers(min_value=1, max_value=1000))
    def test_tuple_unit_consistent_across_hasher_instances(self, key, occurrence):
        assert KeyHasher(seed=3).tuple_unit(key, occurrence) == KeyHasher(seed=3).tuple_unit(
            key, occurrence
        )
