"""Property-based soundness of posting-list candidate generation.

The posting index promises two things for any lake, any sketch method, any
capacity and any live mutation history:

* **superset** — ``PostingsIndex.probe(base_kmv.hashes)`` contains every
  candidate whose containment estimate against the base KMV is non-zero
  (so every survivor of any ``min_containment > 0`` filter);
* **byte-identical answers** — planning a query through the posting probe
  returns exactly the results of the full candidate scan.

Both are exercised through bulk construction (``IndexBuilder.build``),
incremental maintenance (``add_table`` on a postings-enabled index,
streamed registration) and removal (builder ``remove_table`` + rebuild).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.builder import IndexBuilder
from repro.discovery.index import SketchIndex
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.ingest import InMemoryReader
from repro.postings import PostingsIndex
from repro.relational.table import Table

METHODS = ("TUPSK", "CSK", "LV2SK", "PRISK", "INDSK")

#: Shared key universe; per-table offsets control how much tables overlap.
KEY_POOL = [f"key{i:03d}" for i in range(150)]


@st.composite
def lake_case(draw):
    """A small random lake plus a base table and query parameters."""
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    capacity = draw(st.sampled_from((4, 16, 48)))
    num_tables = draw(st.integers(1, 4))
    tables = []
    for position in range(num_tables):
        offset = draw(st.integers(0, len(KEY_POOL) - 1))
        size = draw(st.integers(5, 40))
        keys = [KEY_POOL[(offset + i) % len(KEY_POOL)] for i in range(size)]
        tables.append(
            Table.from_dict(
                {"key": keys, "value": rng.normal(size=size).tolist()},
                name=f"table{position}",
            )
        )
    base_offset = draw(st.integers(0, len(KEY_POOL) - 1))
    base_size = draw(st.integers(5, 50))
    base = Table.from_dict(
        {
            "key": [
                KEY_POOL[(base_offset + i) % len(KEY_POOL)] for i in range(base_size)
            ],
            "target": rng.normal(size=base_size).tolist(),
        },
        name="base",
    )
    min_containment = draw(st.sampled_from((0.01, 0.1, 0.5)))
    min_join_size = draw(st.sampled_from((2, 8, 24)))
    return tables, base, capacity, seed % 7, min_containment, min_join_size


def result_bytes(results):
    return [
        (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
        for r in results
    ]


def assert_probe_superset(index, base_kmv, min_containment):
    """Every candidate with non-zero containment is in the probe result."""
    matched = index.postings.probe(base_kmv.hashes)
    for candidate in index.candidates:
        containment = base_kmv.containment_estimate(candidate.key_kmv)
        if containment > 0:
            assert candidate.candidate_id in matched, candidate.candidate_id
        if containment >= min_containment > 0:
            assert candidate.candidate_id in matched


def assert_identical_answers(index, query):
    probed = index.query(query)
    scanned = index.query(query, use_postings=False)
    assert result_bytes(probed) == result_bytes(scanned)


class TestBulkConstruction:
    @settings(max_examples=10, deadline=None)
    @given(case=lake_case())
    @pytest.mark.parametrize("method", METHODS)
    def test_superset_and_identical_answers(self, method, case):
        tables, base, capacity, seed, min_containment, min_join_size = case
        builder = IndexBuilder(
            EngineConfig(method=method, capacity=capacity, seed=seed)
        )
        for table in tables:
            builder.add_table(table, ["key"])
        index = builder.build()
        assert index.postings is not None
        assert index.postings.ids() == {
            candidate.candidate_id for candidate in index.candidates
        }
        base_kmv = index.engine.key_sketch(base, "key")
        assert_probe_superset(index, base_kmv, min_containment)
        assert_identical_answers(
            index,
            AugmentationQuery(
                table=base,
                key_column="key",
                target_column="target",
                top_k=0,
                min_containment=min_containment,
                min_join_size=min_join_size,
            ),
        )


class TestLiveMutation:
    @settings(max_examples=8, deadline=None)
    @given(case=lake_case())
    def test_incremental_add_matches_bulk_rebuild(self, case):
        """add_table on a postings-enabled index (including overwrites and a
        chunk-streamed registration) maintains exactly the postings a fresh
        bulk build over the final candidates would produce."""
        tables, base, capacity, seed, min_containment, min_join_size = case
        engine = SketchEngine(EngineConfig(capacity=capacity, seed=seed))
        index = SketchIndex(engine)
        index.enable_postings()
        for table in tables:
            index.add_table(table, ["key"])
        # Overwrite the first table (same name, same key) — the stale
        # posting entries must be retired, not unioned.
        index.add_table(tables[0], ["key"])
        # Streamed registration: candidates built chunk by chunk.
        for candidate in engine.ingest_table(
            InMemoryReader(base.rename("streamed"), 7), ["key"]
        ):
            index.add_prebuilt(candidate)
        fresh = PostingsIndex.from_entries(
            (candidate.candidate_id, candidate.key_kmv.hashes)
            for candidate in index.candidates
        )
        assert index.postings.ids() == fresh.ids()
        probe_pool = [candidate.key_kmv.hashes for candidate in index.candidates]
        for units in probe_pool:
            assert index.postings.probe(units) == fresh.probe(units)
        base_kmv = engine.key_sketch(base, "key")
        assert_probe_superset(index, base_kmv, min_containment)
        assert_identical_answers(
            index,
            AugmentationQuery(
                table=base,
                key_column="key",
                target_column="target",
                top_k=0,
                min_containment=min_containment,
                min_join_size=min_join_size,
            ),
        )

    @settings(max_examples=8, deadline=None)
    @given(case=lake_case(), victim=st.integers(0, 3))
    def test_builder_remove_table_rebuild_stays_sound(self, case, victim):
        tables, base, capacity, seed, min_containment, min_join_size = case
        builder = IndexBuilder(EngineConfig(capacity=capacity, seed=seed))
        for table in tables:
            builder.add_table(table, ["key"])
        builder.build()
        builder.remove_table(tables[victim % len(tables)].name)
        index = builder.build()
        assert index.postings.ids() == {
            candidate.candidate_id for candidate in index.candidates
        }
        if len(index) == 0:
            return  # removed the only table; an empty index refuses queries
        base_kmv = index.engine.key_sketch(base, "key")
        assert_probe_superset(index, base_kmv, min_containment)
        assert_identical_answers(
            index,
            AugmentationQuery(
                table=base,
                key_column="key",
                target_column="target",
                top_k=0,
                min_containment=min_containment,
                min_join_size=min_join_size,
            ),
        )
