"""Property-based tests for the MI estimators (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.entropy import entropy_mle, entropy_miller_madow, joint_entropy_mle
from repro.estimators.mle import MLEEstimator
from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.estimators.smoothed import SmoothedMLEEstimator

discrete_values = st.integers(min_value=0, max_value=6)
discrete_samples = st.lists(discrete_values, min_size=10, max_size=200)
paired_samples = st.lists(
    st.tuples(discrete_values, discrete_values), min_size=10, max_size=200
)


class TestEntropyInvariants:
    @given(discrete_samples)
    def test_entropy_bounds(self, values):
        entropy = entropy_mle(values)
        assert 0.0 <= entropy <= math.log(len(set(values))) + 1e-9

    @given(discrete_samples)
    def test_miller_madow_at_least_mle(self, values):
        assert entropy_miller_madow(values) >= entropy_mle(values)

    @given(paired_samples)
    def test_joint_entropy_bounds(self, pairs):
        x = [pair[0] for pair in pairs]
        y = [pair[1] for pair in pairs]
        joint = joint_entropy_mle(x, y)
        assert max(entropy_mle(x), entropy_mle(y)) - 1e-9 <= joint
        assert joint <= entropy_mle(x) + entropy_mle(y) + 1e-9

    @given(discrete_samples)
    def test_entropy_invariant_under_relabeling(self, values):
        relabeled = [value * 13 + 7 for value in values]
        assert entropy_mle(relabeled) == entropy_mle(values)


class TestMleMiInvariants:
    @given(paired_samples)
    def test_non_negative_and_bounded_by_entropies(self, pairs):
        x = [pair[0] for pair in pairs]
        y = [pair[1] for pair in pairs]
        mi = MLEEstimator().estimate(x, y)
        assert 0.0 <= mi <= min(entropy_mle(x), entropy_mle(y)) + 1e-9

    @given(paired_samples)
    def test_symmetry(self, pairs):
        x = [pair[0] for pair in pairs]
        y = [pair[1] for pair in pairs]
        estimator = MLEEstimator()
        assert abs(estimator.estimate(x, y) - estimator.estimate(y, x)) < 1e-9

    @given(paired_samples)
    def test_invariance_under_bijection_of_one_variable(self, pairs):
        x = [pair[0] for pair in pairs]
        y = [pair[1] for pair in pairs]
        remapped = [{0: 5, 1: 3, 2: 0, 3: 6, 4: 1, 5: 4, 6: 2}[value] for value in y]
        estimator = MLEEstimator()
        assert abs(estimator.estimate(x, y) - estimator.estimate(x, remapped)) < 1e-9

    @given(discrete_samples)
    def test_self_information_equals_entropy(self, values):
        assert MLEEstimator().estimate(values, values) == entropy_mle(values)

    @given(paired_samples, st.floats(min_value=0.0, max_value=5.0))
    def test_smoothing_never_exceeds_joint_support_entropy(self, pairs, alpha):
        x = [pair[0] for pair in pairs]
        y = [pair[1] for pair in pairs]
        mi = SmoothedMLEEstimator(alpha=alpha).estimate(x, y)
        assert 0.0 <= mi <= math.log(len(set(x)) * len(set(y))) + 1e-9


class TestKsgFamilyInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=12,
            max_size=120,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_mixed_ksg_non_negative_and_finite(self, x_values, seed):
        rng = np.random.default_rng(seed)
        y_values = rng.normal(size=len(x_values))
        estimate = MixedKSGEstimator(k=3).estimate(x_values, y_values.tolist())
        assert np.isfinite(estimate)
        assert estimate >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_mixed_ksg_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=80)
        y = x + rng.normal(size=80)
        estimator = MixedKSGEstimator(k=3)
        assert abs(estimator.estimate(x, y) - estimator.estimate(y, x)) < 1e-9
