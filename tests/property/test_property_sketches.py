"""Property-based tests for the sketching layer (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.table import Table
from repro.sketches.base import SketchSide, build_sketch
from repro.sketches.join import join_sketches
from repro.sketches.kmv import KMVSketch

METHODS = ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK")

keys = st.sampled_from([f"k{i}" for i in range(12)])
values = st.integers(min_value=-50, max_value=50)


@st.composite
def key_value_table(draw, name, min_rows=1, max_rows=60):
    size = draw(st.integers(min_value=min_rows, max_value=max_rows))
    key_list = draw(st.lists(keys, min_size=size, max_size=size))
    value_list = draw(st.lists(values, min_size=size, max_size=size))
    return Table.from_dict({"key": key_list, "value": value_list}, name=name)


@settings(max_examples=40, deadline=None)
@given(
    key_value_table("t"),
    st.sampled_from(METHODS),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=10_000),
)
def test_base_sketch_size_bounds(table, method, capacity, seed):
    """Base sketches never exceed 2n (LV2SK/PRISK) or n (all other methods)."""
    sketch = build_sketch(
        table, "key", "value", method=method, capacity=capacity, seed=seed
    )
    limit = 2 * capacity if method in ("LV2SK", "PRISK") else capacity
    assert len(sketch) <= limit
    assert len(sketch) <= table.num_rows


@settings(max_examples=40, deadline=None)
@given(
    key_value_table("t"),
    st.sampled_from(METHODS),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=10_000),
)
def test_candidate_sketch_keys_unique_and_bounded(table, method, capacity, seed):
    sketch = build_sketch(
        table, "key", "value",
        method=method, side=SketchSide.CANDIDATE, capacity=capacity, seed=seed, agg="avg",
    )
    assert len(sketch) <= capacity
    assert len(set(sketch.key_ids)) == len(sketch.key_ids)
    assert len(sketch) <= table.column("key").distinct_count()


@settings(max_examples=40, deadline=None)
@given(
    key_value_table("base"),
    key_value_table("cand"),
    st.sampled_from(METHODS),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=10_000),
)
def test_sketch_join_pairs_are_subset_of_true_join(base, cand, method, capacity, seed):
    """Every (feature, target) pair recovered by the sketch join must occur in
    the true augmentation join (with AVG featurization)."""
    base_sketch = build_sketch(
        base, "key", "value", method=method, capacity=capacity, seed=seed
    )
    cand_sketch = build_sketch(
        cand, "key", "value",
        method=method, side=SketchSide.CANDIDATE, capacity=capacity, seed=seed, agg="avg",
    )
    joined = join_sketches(base_sketch, cand_sketch)

    if method == "CSK":
        # CSK keeps first-seen values rather than sampling/aggregating, so its
        # pairs follow different semantics; only the size bound applies.
        assert joined.join_size <= len(base_sketch)
        return

    aggregated = {
        key: sum(group) / len(group)
        for key, group in _group(cand).items()
    }
    true_pairs = Counter(
        (aggregated[key], target)
        for key, target in zip(base.column("key").values, base.column("value").values)
        if key in aggregated
    )
    sketch_pairs = Counter(joined.pairs())
    for pair, count in sketch_pairs.items():
        assert true_pairs[pair] >= count


def _group(table):
    groups = {}
    for key, value in zip(table.column("key").values, table.column("value").values):
        groups.setdefault(key, []).append(value)
    return groups


@settings(max_examples=30, deadline=None)
@given(
    key_value_table("t", min_rows=2, max_rows=80),
    st.sampled_from(METHODS),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=10_000),
)
def test_sketches_are_deterministic(table, method, capacity, seed):
    first = build_sketch(table, "key", "value", method=method, capacity=capacity, seed=seed)
    second = build_sketch(table, "key", "value", method=method, capacity=capacity, seed=seed)
    assert first.key_ids == second.key_ids
    assert first.values == second.values


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=64),
)
def test_kmv_distinct_estimate_exact_when_under_capacity(values, capacity):
    sketch = KMVSketch(capacity=capacity).update(values)
    distinct = len(set(values))
    assert len(sketch) == min(distinct, capacity)
    if distinct < capacity:
        # Exact count while the sketch is not full.
        assert sketch.distinct_count_estimate() == distinct
    else:
        # A full sketch has seen at least `capacity` distinct values.
        assert sketch.distinct_count_estimate() >= capacity


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=100))
def test_kmv_self_similarity(values):
    first = KMVSketch.from_values(values, capacity=64)
    second = KMVSketch.from_values(values, capacity=64)
    assert first.jaccard_estimate(second) == 1.0
    assert first.containment_estimate(second) == 1.0
