"""Cross-source byte-identity of persisted indexes (the tentpole invariant).

The pluggable source layer promises that the *same logical rows* produce
**byte-identical** persisted artifacts — ``index.json``, ``sketches.npz``
and the ``postings.npz`` sidecar — no matter which source format carried
them: in-memory ``Table``, CSV text, or typed Parquet.  This suite builds
an index from each representation of adversarial tables (nulls, NaN,
bigints, unicode keys, int→float dtype drift) and compares the persisted
stores array by array.  The Parquet legs skip when the optional pyarrow
dependency is absent; the CSV/in-memory legs always run.
"""

from __future__ import annotations

import csv
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.builder import IndexBuilder
from repro.discovery.persistence import save_index
from repro.engine import EngineConfig
from repro.ingest.sources import open_source
from repro.relational.table import Table
from repro.store import load_npz

# ---------------------------------------------------------------------------
# Helpers: build an index directory from a list of sources, compare stores.
# ---------------------------------------------------------------------------

INT64_MAX = 2**63 - 1


def build_index_dir(sources, directory, *, chunk_size=7):
    builder = IndexBuilder(EngineConfig(capacity=32, seed=9), num_shards=2)
    for source in sources:
        builder.add_table_stream(
            open_source(source, chunk_size=chunk_size), ["key"]
        )
    save_index(builder.build(), directory)
    return directory


def assert_index_dirs_byte_identical(left_dir, right_dir):
    left_document = json.loads((left_dir / "index.json").read_text())
    right_document = json.loads((right_dir / "index.json").read_text())
    # Table names come from file stems / Table names and are made equal by
    # the callers; everything else must match structurally too.
    assert left_document == right_document
    left_store = load_npz(left_dir / "sketches.npz")
    right_store = load_npz(right_dir / "sketches.npz")
    assert left_store._manifest == right_store._manifest
    assert set(left_store._arrays) == set(right_store._arrays)
    for name in left_store._arrays:
        left, right = left_store.array(name), right_store.array(name)
        assert left.dtype == right.dtype, name
        assert left.tobytes() == right.tobytes(), name
    # The postings sidecar is a plain .npz (not a sketch store): compare the
    # raw arrays — the zip container itself embeds timestamps.
    with np.load(left_dir / "postings.npz", allow_pickle=False) as left_npz, \
            np.load(right_dir / "postings.npz", allow_pickle=False) as right_npz:
        assert set(left_npz.files) == set(right_npz.files)
        for name in left_npz.files:
            left, right = left_npz[name], right_npz[name]
            assert left.dtype == right.dtype, name
            assert left.tobytes() == right.tobytes(), name


def write_csv_file(path, data):
    """Write a column dict as CSV: missing (None/NaN) becomes an empty field."""
    names = list(data)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*(data[name] for name in names)):
            writer.writerow(
                [
                    ""
                    if value is None
                    or (isinstance(value, float) and math.isnan(value))
                    else value
                    for value in row
                ]
            )
    return path


def write_parquet_file(path, data, arrow_types):
    pa = pytest.importorskip("pyarrow")
    pq = pytest.importorskip("pyarrow.parquet")
    type_for = {"string": pa.string(), "float": pa.float64(), "int": pa.int64()}
    table = pa.table(
        {
            name: pa.array(
                [
                    None
                    if isinstance(value, float) and math.isnan(value)
                    and arrow_types[name] != "float"
                    else value
                    for value in values
                ],
                type=type_for[arrow_types[name]],
            )
            for name, values in data.items()
        }
    )
    pq.write_table(table, path, row_group_size=3)
    return path


# ---------------------------------------------------------------------------
# Adversarial fixed cases.  Each is (column dict, arrow type per column);
# values are chosen so CSV text inference, Python value inference and the
# declared Parquet types all agree on the logical schema.
# ---------------------------------------------------------------------------

NAN = float("nan")

ADVERSARIAL_TABLES = {
    "nulls_everywhere": (
        {
            "key": ["a", None, "c", None, "e", "a"],
            "value": [1.5, None, None, 4.5, None, 1.5],
        },
        {"key": "string", "value": "float"},
    ),
    "nan_is_missing": (
        {
            "key": ["x", "y", "z", "x", "y"],
            "value": [NAN, 2.5, NAN, -0.5, 3.5],
        },
        {"key": "string", "value": "float"},
    ),
    "bigints": (
        {
            "key": ["k1", "k2", "k3", "k4"],
            "value": [INT64_MAX, -INT64_MAX, 123456789012345, 7],
        },
        {"key": "string", "value": "int"},
    ),
    "unicode_keys": (
        {
            "key": ["café", "naïve", "日本語", "emoji🎉", "Ωμέγα", "café"],
            "value": [1.25, 2.25, 3.25, 4.25, 5.25, 1.25],
        },
        {"key": "string", "value": "float"},
    ),
    "int_to_float_drift": (
        # Whole-file inference must make the early ints FLOAT: 1 -> 1.0.
        {
            "key": ["a", "b", "c", "d", "e"],
            "value": [1, 2, 3, 4, 5.5],
        },
        {"key": "string", "value": "float"},
    ),
}


class TestCsvMatchesInMemory:
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL_TABLES))
    def test_persisted_stores_byte_identical(self, case, tmp_path):
        data, _ = ADVERSARIAL_TABLES[case]
        csv_path = write_csv_file(tmp_path / "t.csv", data)
        table = Table.from_dict(data, name="t")
        csv_dir = build_index_dir([csv_path], tmp_path / "from_csv")
        memory_dir = build_index_dir([table], tmp_path / "from_memory")
        assert_index_dirs_byte_identical(csv_dir, memory_dir)

    def test_chunk_size_never_leaks_into_artifacts(self, tmp_path):
        data, _ = ADVERSARIAL_TABLES["int_to_float_drift"]
        csv_path = write_csv_file(tmp_path / "t.csv", data)
        small = build_index_dir([csv_path], tmp_path / "small", chunk_size=1)
        large = build_index_dir([csv_path], tmp_path / "large", chunk_size=100)
        assert_index_dirs_byte_identical(small, large)


class TestParquetMatchesCsvAndMemory:
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL_TABLES))
    def test_persisted_stores_byte_identical(self, case, tmp_path):
        data, arrow_types = ADVERSARIAL_TABLES[case]
        parquet_path = write_parquet_file(tmp_path / "t.parquet", data, arrow_types)
        csv_path = write_csv_file(tmp_path / "t.csv", data)
        table = Table.from_dict(data, name="t")
        parquet_dir = build_index_dir([parquet_path], tmp_path / "from_parquet")
        csv_dir = build_index_dir([csv_path], tmp_path / "from_csv")
        memory_dir = build_index_dir([table], tmp_path / "from_memory")
        assert_index_dirs_byte_identical(parquet_dir, csv_dir)
        assert_index_dirs_byte_identical(parquet_dir, memory_dir)

    def test_mixed_format_lake_matches_uniform_lake(self, tmp_path):
        """A lake half in CSV, half in Parquet == the same lake all-CSV."""
        pytest.importorskip("pyarrow")
        tables = {
            "t0": ADVERSARIAL_TABLES["nulls_everywhere"],
            "t1": ADVERSARIAL_TABLES["unicode_keys"],
        }
        all_csv, mixed = [], []
        for position, (name, (data, arrow_types)) in enumerate(
            sorted(tables.items())
        ):
            all_csv.append(write_csv_file(tmp_path / f"csv_{name}.csv", data))
            if position % 2 == 0:
                mixed.append(write_csv_file(tmp_path / f"mix_{name}.csv", data))
            else:
                mixed.append(
                    write_parquet_file(
                        tmp_path / f"mix_{name}.parquet", data, arrow_types
                    )
                )
        csv_dir = build_index_dir(
            [open_source(path, name=f"t{i}") for i, path in enumerate(all_csv)],
            tmp_path / "all_csv",
        )
        mixed_dir = build_index_dir(
            [open_source(path, name=f"t{i}") for i, path in enumerate(mixed)],
            tmp_path / "mixed",
        )
        assert_index_dirs_byte_identical(csv_dir, mixed_dir)


# Hypothesis leg: arbitrary unicode/None keys and numeric/None values must
# round-trip through CSV to the same persisted bytes as the in-memory table.
printable_keys = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(
            min_codepoint=33, max_codepoint=0x2FFF, blacklist_characters=",\r\n\""
        ),
        min_size=1,
        max_size=8,
    ),
)
float_values = st.one_of(
    st.none(),
    st.integers(-(2**40), 2**40).map(float),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)


class TestHypothesisCsvRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(printable_keys, min_size=2, max_size=20),
        seed_values=st.lists(float_values, min_size=1, max_size=20),
    )
    def test_csv_and_memory_agree(self, keys, seed_values, tmp_path_factory):
        if all(key is None for key in keys):
            keys = keys + ["anchor"]
        values = [
            seed_values[index % len(seed_values)] for index in range(len(keys))
        ]
        data = {"key": keys, "value": values}
        root = tmp_path_factory.mktemp("case")
        csv_path = write_csv_file(root / "t.csv", data)
        csv_dir = build_index_dir([csv_path], root / "from_csv", chunk_size=3)
        memory_dir = build_index_dir(
            [Table.from_dict(data, name="t")], root / "from_memory", chunk_size=3
        )
        assert_index_dirs_byte_identical(csv_dir, memory_dir)
