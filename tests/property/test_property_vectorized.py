"""Property-based equivalence of the vectorized hashing/sketch fast paths.

The whole point of the batched NumPy paths is that they are **bit-identical**
to the scalar reference implementations — the engine excludes the
``vectorized`` flag from cache keys and persisted formats on that basis.
This suite drives both paths over adversarial columns (negative ints,
bigints beyond int64, ``3.0 == 3`` float canonicalization, NaN/inf, unicode
strings, ``None``-bearing and mixed-type columns) and asserts element-level
equality, plus end-to-end: identical sketches per method and byte-identical
persisted indexes.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.builder import IndexBuilder
from repro.discovery.persistence import save_index
from repro.engine import EngineConfig
from repro.hashing.fibonacci import fibonacci_hash_unit, fibonacci_hash_unit_many
from repro.hashing.murmur3 import murmur3_32, murmur3_32_many
from repro.hashing.unit import KeyHasher, canonical_bytes, canonical_bytes_many
from repro.relational.table import Table
from repro.sketches.base import get_builder
from repro.sketches.kmv import KMVSketch
from repro.store import load_npz

# Columns mixing every value shape the relational layer can produce, plus
# shapes it cannot (bigints, exotic floats) that the hashing layer still
# accepts.
column_values = st.lists(
    st.one_of(
        st.integers(min_value=-(2**80), max_value=2**80),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=24),
        st.booleans(),
        st.none(),
        st.just(3.0),
        st.just(3),
    ),
    min_size=0,
    max_size=60,
)

# Homogeneous columns exercise the batched encoding fast paths.
homogeneous_columns = st.one_of(
    st.lists(st.integers(min_value=-(2**70), max_value=2**70), max_size=60),
    st.lists(st.floats(allow_nan=True, allow_infinity=True), max_size=60),
    st.lists(st.text(max_size=24), max_size=60),
)


class TestHashingEquivalence:
    @given(st.lists(st.binary(max_size=40), max_size=60), st.integers(0, 2**32 - 1))
    def test_murmur3_32_many_matches_scalar(self, blobs, seed):
        batched = murmur3_32_many(blobs, seed=seed)
        assert batched.dtype == np.uint32
        for position, blob in enumerate(blobs):
            assert int(batched[position]) == murmur3_32(blob, seed=seed)

    @given(st.lists(st.integers(min_value=-(2**70), max_value=2**70), max_size=60))
    def test_fibonacci_many_matches_scalar(self, values):
        """Includes negatives and > 64-bit ints: both mask modulo 2**64."""
        batched = fibonacci_hash_unit_many(values)
        for position, value in enumerate(values):
            assert float(batched[position]) == fibonacci_hash_unit(value)

    @given(st.one_of(column_values, homogeneous_columns))
    def test_canonical_bytes_many_matches_scalar(self, values):
        assert canonical_bytes_many(values) == [
            canonical_bytes(value) for value in values
        ]

    @given(st.one_of(column_values, homogeneous_columns), st.integers(0, 1000))
    def test_key_id_and_unit_many_match_scalar(self, values, seed):
        hasher = KeyHasher(seed=seed)
        key_ids = hasher.key_id_many(values)
        units = hasher.unit_many(values)
        for position, value in enumerate(values):
            assert int(key_ids[position]) == hasher.key_id(value)
            assert float(units[position]) == hasher.unit(value)

    @given(
        st.lists(st.one_of(st.integers(-100, 100), st.text(max_size=8)), max_size=40),
        st.integers(0, 1000),
    )
    def test_tuple_unit_many_matches_scalar(self, values, seed):
        hasher = KeyHasher(seed=seed)
        occurrences = [(position % 5) + 1 for position in range(len(values))]
        batched = hasher.tuple_unit_many(values, occurrences)
        for position, (value, occurrence) in enumerate(zip(values, occurrences)):
            assert float(batched[position]) == hasher.tuple_unit(value, occurrence)


class TestKMVEquivalence:
    @given(column_values, st.integers(1, 16), st.integers(0, 100))
    def test_from_values_matches_streaming(self, values, capacity, seed):
        fast = KMVSketch.from_values(
            values, capacity=capacity, seed=seed, vectorized=True
        )
        slow = KMVSketch.from_values(
            values, capacity=capacity, seed=seed, vectorized=False
        )
        assert fast._entries == slow._entries
        assert fast._threshold == slow._threshold
        assert fast.hashes == slow.hashes
        if len(fast):
            assert fast.distinct_count_estimate() == slow.distinct_count_estimate()


# Table columns coerce values to one dtype, so draw realistic column shapes.
key_columns = st.one_of(
    st.lists(
        st.one_of(st.integers(-(2**40), 2**40), st.none()), min_size=2, max_size=50
    ),
    st.lists(st.one_of(st.text(max_size=12), st.none()), min_size=2, max_size=50),
    st.lists(
        st.one_of(st.floats(allow_nan=False, allow_infinity=False), st.none()),
        min_size=2,
        max_size=50,
    ),
)


class TestSketchEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(key_columns, st.integers(1, 12), st.integers(0, 50))
    @pytest.mark.parametrize("method", ["TUPSK", "LV2SK", "PRISK", "CSK", "INDSK"])
    def test_both_paths_build_identical_sketches(self, method, keys, capacity, seed):
        values = [float(position) for position in range(len(keys))]
        table = Table.from_dict({"key": keys, "value": values}, name="t")
        if all(key is None for key in table.column("key").values):
            return  # nothing sketchable; both paths raise identically
        fast = get_builder(method, capacity=capacity, seed=seed, vectorized=True)
        slow = get_builder(method, capacity=capacity, seed=seed, vectorized=False)
        assert fast.sketch_base(table, "key", "value") == slow.sketch_base(
            table, "key", "value"
        )
        # Fresh builders: INDSK's RNG streams advance per sketch call.
        fast = get_builder(method, capacity=capacity, seed=seed, vectorized=True)
        slow = get_builder(method, capacity=capacity, seed=seed, vectorized=False)
        assert fast.sketch_candidate(table, "key", "value") == slow.sketch_candidate(
            table, "key", "value"
        )


def _build_lake_index(tmp_path, vectorized: bool, directory: str):
    rng = np.random.default_rng(29)
    keys = [f"k{i:04d}" for i in range(80)]
    builder = IndexBuilder(
        EngineConfig(capacity=32, vectorized=vectorized), num_shards=4
    )
    for position in range(4):
        table = Table.from_dict(
            {
                "key": [keys[i] for i in rng.integers(0, 80, size=150)],
                "metric": rng.normal(size=150).tolist(),
                "label": [
                    "ab"[int(i) % 2] for i in rng.integers(0, 80, size=150)
                ],
            },
            name=f"lake{position}",
        )
        builder.add_table(table, ["key"])
    index = builder.build()
    target = tmp_path / directory
    save_index(index, target)
    return target


class TestPersistedIndexEquivalence:
    def test_vectorized_flag_produces_byte_identical_indexes(self, tmp_path):
        """``vectorized`` never leaks into persisted artifacts.

        The index documents may differ only in the flag itself; every hashed
        key, sketch value and KMV pool in the columnar store must match byte
        for byte.  (The ``.npz`` container embeds zip timestamps, so the
        comparison is per stored array, not on the archive file.)
        """
        fast_dir = _build_lake_index(tmp_path, True, "fast")
        slow_dir = _build_lake_index(tmp_path, False, "slow")

        fast_document = json.loads((fast_dir / "index.json").read_text())
        slow_document = json.loads((slow_dir / "index.json").read_text())
        assert fast_document["engine_config"].pop("vectorized") is True
        assert slow_document["engine_config"].pop("vectorized") is False
        assert fast_document == slow_document

        fast_store = load_npz(fast_dir / "sketches.npz")
        slow_store = load_npz(slow_dir / "sketches.npz")
        assert fast_store._manifest == slow_store._manifest
        assert set(fast_store._arrays) == set(slow_store._arrays)
        for name in fast_store._arrays:
            left, right = fast_store.array(name), slow_store.array(name)
            assert left.dtype == right.dtype, name
            assert left.tobytes() == right.tobytes(), name
