"""Property tests for estimator edge cases the scenario generators exercise.

The scenario harness (:mod:`repro.scenarios`) perturbs lakes toward these
degenerate shapes — constant columns, collapsed key spaces, all-null keys,
capacities above the distinct-key count.  These properties pin the contract
for *every* sketch method: degenerate inputs produce a clean refusal
(:class:`~repro.exceptions.InsufficientSamplesError` /
:class:`~repro.exceptions.SketchError`) or a finite, sane estimate — never
a crash, NaN, or fabricated signal.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import InsufficientSamplesError, SketchError
from repro.relational.table import Table
from repro.sketches.base import available_methods

ALL_METHODS = available_methods()

#: Zero-information inputs don't estimate to exactly 0.0: the smoothed-MLE
#: estimator's pseudocounts spread mass over unseen cells, biasing MI up by
#: at most ~0.23 nats at the worst support/sample ratio (empirically, over
#: every method).  The property is "no fabricated signal beyond the
#: documented smoothing envelope", not exact zero.
ZERO_MI_ENVELOPE = 0.3

target_values = st.lists(
    st.floats(-100.0, 100.0, allow_nan=False, width=32), min_size=10, max_size=40
)
feature_values = st.lists(
    st.floats(-100.0, 100.0, allow_nan=False, width=32), min_size=10, max_size=40
)


def engine_for(method: str, capacity: int = 32) -> SketchEngine:
    return SketchEngine(EngineConfig(method=method, capacity=capacity, seed=0))


def estimate(engine, base_table, cand_table):
    base = engine.sketch_base(base_table, "key", "target")
    candidate = engine.sketch_candidate(cand_table, "key", "feature")
    return engine.estimate(base, candidate)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestConstantTarget:
    @settings(max_examples=15, deadline=None)
    @given(features=feature_values, constant=st.floats(-10.0, 10.0, allow_nan=False))
    def test_constant_target_yields_zero_mi(self, method, features, constant):
        """A constant target carries no information: MI stays inside the
        smoothing envelope (see ZERO_MI_ENVELOPE) and finite."""
        keys = [f"k{i:03d}" for i in range(len(features))]
        base = Table.from_dict(
            {"key": keys, "target": [constant] * len(keys)}, name="base"
        )
        cand = Table.from_dict({"key": keys, "feature": features}, name="cand")
        result = estimate(engine_for(method), base, cand)
        assert math.isfinite(result.mi)
        assert abs(result.mi) <= ZERO_MI_ENVELOPE

    @settings(max_examples=15, deadline=None)
    @given(targets=target_values, constant=st.floats(-10.0, 10.0, allow_nan=False))
    def test_constant_feature_yields_zero_mi(self, method, targets, constant):
        keys = [f"k{i:03d}" for i in range(len(targets))]
        base = Table.from_dict({"key": keys, "target": targets}, name="base")
        cand = Table.from_dict(
            {"key": keys, "feature": [constant] * len(keys)}, name="cand"
        )
        result = estimate(engine_for(method), base, cand)
        assert math.isfinite(result.mi)
        assert abs(result.mi) <= ZERO_MI_ENVELOPE


@pytest.mark.parametrize("method", ALL_METHODS)
class TestSingleDistinctKey:
    @settings(max_examples=15, deadline=None)
    @given(targets=target_values, features=feature_values)
    def test_refusal_or_zero_signal(self, method, targets, features):
        """One join key: the aggregated feature is a single value, so the
        only sound outcomes are a refusal or a finite estimate inside
        the smoothing envelope — never invented MI."""
        base = Table.from_dict(
            {"key": ["only"] * len(targets), "target": targets}, name="base"
        )
        cand = Table.from_dict(
            {"key": ["only"] * len(features), "feature": features}, name="cand"
        )
        engine = engine_for(method)
        try:
            result = estimate(engine, base, cand)
        except InsufficientSamplesError:
            return
        assert math.isfinite(result.mi)
        assert abs(result.mi) <= ZERO_MI_ENVELOPE
        assert result.join_size <= len(targets)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestAllNullKeys:
    @settings(max_examples=10, deadline=None)
    @given(features=feature_values)
    def test_all_null_candidate_keys_refuse_cleanly(self, method, features):
        """An all-null key column has nothing to join: sketching must raise
        a library error (not crash) — there are no keys to select."""
        cand = Table.from_dict(
            {"key": [None] * len(features), "feature": features}, name="cand"
        )
        engine = engine_for(method)
        with pytest.raises(SketchError, match="no values"):
            engine.sketch_candidate(cand, "key", "feature")

    @settings(max_examples=10, deadline=None)
    @given(targets=target_values)
    def test_all_null_base_keys_refuse_cleanly(self, method, targets):
        base = Table.from_dict(
            {"key": [None] * len(targets), "target": targets}, name="base"
        )
        engine = engine_for(method)
        with pytest.raises(SketchError, match="no values"):
            engine.sketch_base(base, "key", "target")


@pytest.mark.parametrize("method", ALL_METHODS)
class TestCapacityAboveDistinctCount:
    @settings(max_examples=15, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(-50.0, 50.0, allow_nan=False, width=32),
                st.floats(-50.0, 50.0, allow_nan=False, width=32),
            ),
            min_size=10,
            max_size=40,
        )
    )
    def test_join_recovers_every_key(self, method, data):
        """Capacity above the distinct-key count: selection keeps every key,
        so the sketch join recovers the full (distinct-key) join exactly."""
        keys = [f"k{i:03d}" for i in range(len(data))]
        base = Table.from_dict(
            {"key": keys, "target": [pair[0] for pair in data]}, name="base"
        )
        cand = Table.from_dict(
            {"key": keys, "feature": [pair[1] for pair in data]}, name="cand"
        )
        engine = engine_for(method, capacity=4 * len(keys))
        result = estimate(engine, base, cand)
        assert result.join_size == len(keys)
        assert math.isfinite(result.mi)
