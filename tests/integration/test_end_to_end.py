"""Integration tests exercising the full pipeline across modules.

These tests combine the relational substrate, the sketches, the estimators
and the discovery layer the way a downstream user (or the paper's evaluation)
would: sketch two tables independently, join the sketches, estimate MI, and
compare against the estimate computed on the materialized join.
"""

import numpy as np
import pytest

from repro import (
    MLEEstimator,
    SketchIndex,
    SketchSide,
    Table,
    augment,
    build_sketch,
    estimate_mi,
    estimate_mi_from_sketches,
)
from repro.evaluation.metrics import spearman_correlation
from repro.opendata import generate_repository, sample_table_pairs
from repro.evaluation.experiments.realdata import full_join_mi, sketch_mi
from repro.synthetic import KeyGeneration, generate_trinomial_dataset
from repro.synthetic.benchmark import generate_cdunif_dataset


class TestSketchVsFullJoinOnSyntheticData:
    def test_sketch_estimate_tracks_full_join_estimate_trinomial(self):
        """Sketch-based MI must approximate the full-join MI (the paper's core claim)."""
        dataset = generate_trinomial_dataset(
            64, 10_000, target_mi=2.0, key_generation=KeyGeneration.KEY_DEP, random_state=0
        )
        full_estimate = MLEEstimator().estimate(dataset.x.tolist(), dataset.y.tolist())

        base_sketch = build_sketch(
            dataset.train_table, "key", "target", method="TUPSK", capacity=512, seed=1
        )
        cand_sketch = build_sketch(
            dataset.cand_table, "key", "feature",
            method="TUPSK", side=SketchSide.CANDIDATE, capacity=512, seed=1,
        )
        sketch_estimate = estimate_mi_from_sketches(
            base_sketch, cand_sketch, estimator=MLEEstimator()
        )
        assert sketch_estimate.join_size == 512
        assert sketch_estimate.mi == pytest.approx(full_estimate, abs=0.45)
        assert sketch_estimate.mi == pytest.approx(dataset.true_mi, abs=0.45)

    def test_sketch_estimate_tracks_truth_cdunif(self):
        dataset = generate_cdunif_dataset(20, 10_000, random_state=1)
        base_sketch = build_sketch(
            dataset.train_table, "key", "target", capacity=1024, seed=2
        )
        cand_sketch = build_sketch(
            dataset.cand_table, "key", "feature",
            side=SketchSide.CANDIDATE, capacity=1024, seed=2,
        )
        estimate = estimate_mi_from_sketches(base_sketch, cand_sketch)
        assert estimate.mi == pytest.approx(dataset.true_mi, abs=0.5)

    def test_larger_sketches_are_more_accurate_on_average(self):
        """Accuracy improves with the sketch size (Section IV-B accuracy discussion)."""
        errors = {64: [], 512: []}
        for seed in range(4):
            dataset = generate_trinomial_dataset(
                64, 8000, target_mi=1.5 + 0.3 * seed, random_state=seed
            )
            for capacity in errors:
                base_sketch = build_sketch(
                    dataset.train_table, "key", "target", capacity=capacity, seed=seed
                )
                cand_sketch = build_sketch(
                    dataset.cand_table, "key", "feature",
                    side=SketchSide.CANDIDATE, capacity=capacity, seed=seed,
                )
                estimate = estimate_mi_from_sketches(
                    base_sketch, cand_sketch, estimator=MLEEstimator()
                )
                errors[capacity].append(abs(estimate.mi - dataset.true_mi))
        assert np.mean(errors[512]) <= np.mean(errors[64])


class TestTaxiScenario:
    """The running example of the paper (Figure 1) executed end to end."""

    @pytest.fixture()
    def taxi_tables(self):
        rng = np.random.default_rng(7)
        dates = [f"2017-{1 + d // 28:02d}-{1 + d % 28:02d}" for d in range(200)]
        daily_temp = {date: float(rng.normal(15, 8)) for date in dates}
        # Demand depends on temperature (plus noise).
        taxi = Table.from_dict(
            {
                "date": dates,
                "num_trips": [
                    max(0.0, 200 - 3.0 * daily_temp[date] + rng.normal(0, 8))
                    for date in dates
                ],
            },
            name="taxi",
        )
        weather_rows = []
        for date in dates:
            for hour in range(4):
                weather_rows.append((date, daily_temp[date] + float(rng.normal(0, 1))))
        weather = Table.from_dict(
            {
                "date": [row[0] for row in weather_rows],
                "temp": [row[1] for row in weather_rows],
            },
            name="weather",
        )
        return taxi, weather

    def test_augmentation_and_mi(self, taxi_tables):
        taxi, weather = taxi_tables
        augmented = augment(
            taxi, weather,
            base_key="date", candidate_key="date", candidate_value="temp", agg="avg",
        )
        assert augmented.num_rows == taxi.num_rows
        full_mi = estimate_mi(
            augmented.column("avg_temp").values, augmented.column("num_trips").values
        )
        assert full_mi > 0.5

    def test_sketches_discover_the_weather_table(self, taxi_tables):
        taxi, weather = taxi_tables
        rng = np.random.default_rng(11)
        noise_table = Table.from_dict(
            {
                "date": taxi.column("date").values,
                "lottery": rng.normal(size=taxi.num_rows).tolist(),
            },
            name="lottery",
        )
        index = SketchIndex(capacity=256, seed=0)
        index.add_candidate(weather, "date", "temp")
        index.add_candidate(noise_table, "date", "lottery")
        results = index.query_columns(taxi, "date", "num_trips", top_k=2, min_join_size=32)
        assert results[0].table_name == "weather"


class TestRepositoryPipeline:
    def test_sketch_ranking_correlates_with_full_join_ranking(self):
        """On a simulated repository the sketch MI ranking tracks the full-join ranking."""
        repository = generate_repository("nyc", random_state=3, num_tables=24)
        pairs = sample_table_pairs(repository, 12, random_state=4)
        full_values, sketch_values = [], []
        for pair in pairs:
            reference = full_join_mi(pair, min_join_rows=8)
            estimate = sketch_mi(pair, "TUPSK", capacity=512, min_join_size=30)
            if reference is None or estimate is None:
                continue
            full_values.append(reference.mi)
            sketch_values.append(estimate.mi)
        assert len(full_values) >= 5
        assert spearman_correlation(sketch_values, full_values) > 0.5
