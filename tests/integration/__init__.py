"""Test package (gives duplicate basenames unique import paths)."""
