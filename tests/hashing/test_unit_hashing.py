"""Tests for canonical key hashing (the composition h_u(h(k)))."""

import numpy as np

from repro.hashing.unit import KeyHasher, canonical_bytes, hash_key, hash_key_unit


class TestCanonicalBytes:
    def test_type_tagging_avoids_collisions(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(None) != canonical_bytes("")
        assert canonical_bytes(True) != canonical_bytes(1)

    def test_int_and_equivalent_float_collide_on_purpose(self):
        """3 and 3.0 represent the same join-key value in real data."""
        assert canonical_bytes(3) == canonical_bytes(3.0)

    def test_tuples_encode_recursively(self):
        assert canonical_bytes(("a", 1)) != canonical_bytes(("a", 2))
        assert canonical_bytes(("a", 1)) == canonical_bytes(["a", 1])

    def test_tuple_part_boundaries_are_unambiguous(self):
        """Length-prefixed parts: content cannot fake a part separator."""
        assert canonical_bytes(("a|b",)) != canonical_bytes(("a", "b"))
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))
        assert canonical_bytes(("a", ("b",))) != canonical_bytes(("a", "b"))
        assert canonical_bytes(()) != canonical_bytes(("",))

    def test_deterministic(self):
        assert canonical_bytes("key") == canonical_bytes("key")


class TestHashKey:
    def test_32_bit_output(self):
        assert 0 <= hash_key("anything") <= 0xFFFFFFFF

    def test_seed_sensitivity(self):
        assert hash_key("k", seed=0) != hash_key("k", seed=1)

    def test_unit_range(self):
        for value in ["a", "b", 1, 2, ("a", 1), None]:
            assert 0.0 <= hash_key_unit(value) < 1.0

    def test_unit_uniformity_over_string_keys(self):
        units = np.array([hash_key_unit(f"key-{i}") for i in range(5000)])
        assert abs(units.mean() - 0.5) < 0.03
        assert abs(np.quantile(units, 0.25) - 0.25) < 0.05


class TestKeyHasher:
    def test_same_seed_same_results(self):
        first = KeyHasher(seed=3)
        second = KeyHasher(seed=3)
        assert first.key_id("zip-11201") == second.key_id("zip-11201")
        assert first.unit("zip-11201") == second.unit("zip-11201")

    def test_different_seed_different_order(self):
        keys = [f"k{i}" for i in range(200)]
        order_a = sorted(keys, key=KeyHasher(seed=0).unit)
        order_b = sorted(keys, key=KeyHasher(seed=99).unit)
        assert order_a != order_b

    def test_tuple_unit_differs_per_occurrence(self):
        hasher = KeyHasher()
        units = {hasher.tuple_unit("key", occurrence) for occurrence in range(1, 50)}
        assert len(units) == 49

    def test_tuple_unit_first_occurrence_is_coordinated(self):
        """The (k, 1) hash must be identical on both sides of a sketch join."""
        hasher = KeyHasher(seed=5)
        assert hasher.tuple_unit("2019-01-01", 1) == hasher.tuple_unit("2019-01-01", 1)
