"""Tests for Fibonacci hashing to the unit interval."""

import numpy as np

from repro.hashing.fibonacci import fibonacci_hash_64, fibonacci_hash_unit


class TestFibonacciHash64:
    def test_deterministic(self):
        assert fibonacci_hash_64(42) == fibonacci_hash_64(42)

    def test_64_bit_range(self):
        for value in (0, 1, 2**31, 2**63, 2**64 - 1):
            assert 0 <= fibonacci_hash_64(value) < 2**64

    def test_sequential_inputs_spread_apart(self):
        """Consecutive integers should land far apart (the point of Fibonacci hashing)."""
        hashes = [fibonacci_hash_64(i) for i in range(10)]
        gaps = [abs(a - b) for a, b in zip(hashes, hashes[1:])]
        assert min(gaps) > 2**60


class TestFibonacciHashUnit:
    def test_unit_interval(self):
        for value in range(1000):
            unit = fibonacci_hash_unit(value)
            assert 0.0 <= unit < 1.0

    def test_roughly_uniform_over_sequential_inputs(self):
        units = np.array([fibonacci_hash_unit(i) for i in range(10_000)])
        assert abs(units.mean() - 0.5) < 0.02
        # Every decile should contain a reasonable share of the values.
        histogram, _ = np.histogram(units, bins=10, range=(0.0, 1.0))
        assert histogram.min() > 500

    def test_deterministic(self):
        assert fibonacci_hash_unit(7) == fibonacci_hash_unit(7)
