"""Tests for the MurmurHash3 implementation (reference vectors + properties)."""

import pytest

from repro.hashing.murmur3 import murmur3_32


class TestReferenceVectors:
    """Known test vectors of MurmurHash3_x86_32 (Appleby's reference / SMHasher)."""

    def test_empty_seed_zero(self):
        assert murmur3_32(b"") == 0x00000000

    def test_empty_seed_one(self):
        assert murmur3_32(b"", seed=1) == 0x514E28B7

    def test_empty_seed_all_ones(self):
        assert murmur3_32(b"", seed=0xFFFFFFFF) == 0x81F16F39

    def test_hello_world_with_seed(self):
        assert murmur3_32(b"Hello, world!", seed=0x9747B28C) == 0x24884CBA

    def test_abc(self):
        assert murmur3_32(b"abc") == 0xB3DD93FA


class TestInputHandling:
    def test_str_input_equals_utf8_bytes(self):
        assert murmur3_32("café") == murmur3_32("café".encode("utf-8"))

    def test_int_input_supported(self):
        assert isinstance(murmur3_32(12345), int)
        assert murmur3_32(12345) == murmur3_32(12345)

    def test_negative_int_supported(self):
        assert murmur3_32(-1) != murmur3_32(1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            murmur3_32(3.14)

    def test_deterministic(self):
        assert murmur3_32(b"determinism") == murmur3_32(b"determinism")

    def test_seed_changes_output(self):
        assert murmur3_32(b"value", seed=0) != murmur3_32(b"value", seed=1)


class TestOutputProperties:
    def test_output_is_32_bit(self):
        for data in (b"", b"a", b"ab", b"abc", b"abcd", b"abcde", bytes(100)):
            value = murmur3_32(data)
            assert 0 <= value <= 0xFFFFFFFF

    def test_tail_lengths_all_handled(self):
        """Inputs of every length modulo 4 exercise all tail branches."""
        values = {murmur3_32(b"x" * length) for length in range(1, 9)}
        assert len(values) == 8  # all distinct

    def test_avalanche_on_single_bit_flip(self):
        base = murmur3_32(b"avalanche-test")
        flipped = murmur3_32(b"avalanche-tesu")  # last byte +1
        differing_bits = bin(base ^ flipped).count("1")
        assert differing_bits >= 8
