"""The example scripts must run end to end and print their headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"

EXPECTED_OUTPUT = {
    "quickstart.py": "sketch-based estimate",
    "taxi_demand_augmentation.py": "Top candidates by sketch-estimated MI",
    "dataset_discovery.py": "Top-3 candidates per estimator",
    "estimator_comparison.py": "Discrete data",
    "synthetic_benchmark.py": "Trinomial(m=64), n=256",
    "serving_quickstart.py": "cache_hit=True",
}

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example script {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_OUTPUT[script] in completed.stdout
