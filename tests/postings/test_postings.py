"""Unit tests for the inverted key index (:mod:`repro.postings`).

The core contract under test: for any probe set of unit hashes,
``PostingsIndex.probe`` returns exactly the live candidates whose retained
hash sets intersect the probe set — through bulk construction, live
mutation (add / overwrite / discard), compaction and persistence.
"""

import json

import numpy as np
import pytest

from repro.exceptions import PostingsError
from repro.postings import (
    POSTINGS_FORMAT_VERSION,
    PostingsIndex,
    load_postings,
    save_postings,
)


def brute_probe(entries: dict[str, list[float]], units) -> set[str]:
    probe = set(units)
    return {
        candidate_id
        for candidate_id, retained in entries.items()
        if probe & set(retained)
    }


@pytest.fixture
def entries() -> dict[str, list[float]]:
    rng = np.random.default_rng(11)
    pool = rng.random(60)
    return {
        f"cand{i}": sorted(rng.choice(pool, size=rng.integers(1, 12), replace=False))
        for i in range(15)
    }


@pytest.fixture
def index(entries) -> PostingsIndex:
    return PostingsIndex.from_entries(entries.items())


class TestConstruction:
    def test_empty(self):
        index = PostingsIndex()
        assert len(index) == 0
        assert index.probe([0.1, 0.9]) == set()
        assert index.stats() == {
            "candidates": 0,
            "key_buckets": 0,
            "postings": 0,
            "avg_postings_per_key": 0.0,
        }

    def test_bulk_matches_brute_force(self, entries, index):
        assert index.ids() == set(entries)
        rng = np.random.default_rng(5)
        all_units = sorted({unit for units in entries.values() for unit in units})
        for _ in range(25):
            probe = list(rng.choice(all_units, size=7)) + list(rng.random(3))
            assert index.probe(probe) == brute_probe(entries, probe)

    def test_bulk_rejects_duplicate_ids(self):
        with pytest.raises(PostingsError, match="duplicate"):
            PostingsIndex.from_entries([("a", [0.1]), ("a", [0.2])])

    def test_rejects_out_of_range_units(self):
        for bad in ([1.0], [-0.01], [float("nan")]):
            with pytest.raises(PostingsError, match="unit interval"):
                PostingsIndex.from_entries([("a", bad)])

    def test_rejects_non_flat_units(self):
        with pytest.raises(PostingsError, match="flat"):
            PostingsIndex.from_entries([("a", [[0.1, 0.2]])])

    def test_candidate_with_no_units_is_live_but_unmatchable(self):
        index = PostingsIndex.from_entries([("empty", []), ("full", [0.5])])
        assert "empty" in index
        assert index.probe([0.5]) == {"full"}
        assert dict(index.entries())["empty"].size == 0


class TestMutation:
    def test_add_then_probe(self, entries, index):
        index.add("late", [0.123456, list(entries.values())[0][0]])
        entries["late"] = [0.123456, list(entries.values())[0][0]]
        assert index.dirty
        probe = [0.123456]
        assert index.probe(probe) == {"late"}

    def test_overwrite_replaces_previous_units(self, index):
        index.add("cand0", [0.999])
        assert index.probe([0.999]) == {"cand0"}
        # The old frozen entry for cand0 must be tombstoned.
        for units in [np.linspace(0.0, 0.99, 50)]:
            assert "cand0" not in index.probe(units) or 0.999 in set(
                np.round(units, 6)
            )

    def test_overwrite_delta_entry_retires_old_buckets(self):
        index = PostingsIndex()
        index.add("a", [0.1, 0.2])
        index.add("a", [0.2, 0.3])
        assert index.probe([0.1]) == set()
        assert index.probe([0.2]) == {"a"}
        assert index.probe([0.3]) == {"a"}

    def test_discard(self, entries, index):
        victim = next(iter(entries))
        assert index.discard(victim) is True
        assert index.discard(victim) is False
        assert victim not in index
        units = entries.pop(victim)
        assert index.probe(units) == brute_probe(entries, units)

    def test_discard_delta_candidate(self):
        index = PostingsIndex()
        index.add("a", [0.4])
        assert index.discard("a") is True
        assert index.probe([0.4]) == set()
        assert len(index) == 0

    def test_len_and_contains_track_mutations(self, index):
        count = len(index)
        index.add("new", [0.42])
        assert len(index) == count + 1 and "new" in index
        index.discard("new")
        assert len(index) == count and "new" not in index

    def test_mutated_index_matches_brute_force(self, entries, index):
        rng = np.random.default_rng(7)
        for round_ in range(30):
            candidate_id = f"cand{rng.integers(0, 20)}"
            if rng.random() < 0.3 and candidate_id in entries:
                entries.pop(candidate_id)
                index.discard(candidate_id)
            else:
                units = sorted(rng.random(rng.integers(1, 8)))
                entries[candidate_id] = units
                index.add(candidate_id, units)
            probe = list(rng.random(4))
            if entries and rng.random() < 0.8:
                pool = [u for units in entries.values() for u in units]
                probe += list(rng.choice(pool, size=min(4, len(pool))))
            assert index.probe(probe) == brute_probe(entries, probe), round_

    def test_compact_is_lossless(self, entries, index):
        index.add("extra", [0.777])
        entries["extra"] = [0.777]
        index.discard("cand3")
        entries.pop("cand3")
        assert index.dirty
        index.compact()
        assert not index.dirty
        assert index.ids() == set(entries)
        pool = [u for units in entries.values() for u in units]
        assert index.probe(pool) == brute_probe(entries, pool)

    def test_stats_agree_between_dirty_and_compacted(self, index):
        index.add("extra", [0.25, 0.75])
        index.discard("cand1")
        dirty_stats = index.stats()
        clean_stats = index.compact().stats()
        assert dirty_stats == clean_stats


class TestPersistence:
    def test_round_trip(self, entries, index, tmp_path):
        path = tmp_path / "postings.npz"
        save_postings(index, path)
        for mmap in (False, True):
            loaded = load_postings(path, mmap=mmap)
            assert loaded.ids() == set(entries)
            pool = [u for units in entries.values() for u in units]
            assert loaded.probe(pool) == brute_probe(entries, pool)
            assert loaded.stats() == index.stats()

    def test_save_compacts_a_copy_without_mutating_the_original(
        self, index, tmp_path
    ):
        index.add("live", [0.31])
        save_postings(index, tmp_path / "postings.npz")
        assert index.dirty  # the caller's index keeps its delta
        loaded = load_postings(tmp_path / "postings.npz")
        assert not loaded.dirty
        assert loaded.probe([0.31]) == {"live"}

    def test_round_trip_empty(self, tmp_path):
        path = tmp_path / "postings.npz"
        save_postings(PostingsIndex(), path)
        assert len(load_postings(path)) == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(PostingsError, match="no posting index"):
            load_postings(tmp_path / "absent.npz")

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "postings.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(PostingsError, match="not a posting index"):
            load_postings(path)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "postings.npz"
        with open(path, "wb") as handle:
            np.savez(handle, something=np.arange(3))
        with pytest.raises(PostingsError):
            load_postings(path)

    def test_rejects_future_version_with_rebuild_hint(self, index, tmp_path):
        path = tmp_path / "postings.npz"
        save_postings(index, path)
        arrays = dict(np.load(path))
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        manifest["version"] = POSTINGS_FORMAT_VERSION + 1
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        ).copy()
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(PostingsError, match="repro index postings build"):
            load_postings(path)

    def test_rejects_inconsistent_arrays(self, index, tmp_path):
        path = tmp_path / "postings.npz"
        save_postings(index, path)
        arrays = dict(np.load(path))
        arrays["lists"] = arrays["lists"][:-1]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(PostingsError, match="corrupted posting index"):
            load_postings(path)
