"""Tests for the open-data repository simulator."""

import pytest

from repro.exceptions import SyntheticDataError
from repro.opendata.repository import (
    NYC_PROFILE,
    WBF_PROFILE,
    generate_repository,
    profile_by_name,
)
from repro.relational.dtypes import DType


class TestProfiles:
    def test_builtin_profiles(self):
        assert profile_by_name("nyc") is NYC_PROFILE
        assert profile_by_name("WBF") is WBF_PROFILE

    def test_unknown_profile(self):
        with pytest.raises(SyntheticDataError):
            profile_by_name("chicago")


class TestGeneration:
    @pytest.fixture(scope="class")
    def repository(self):
        return generate_repository("nyc", random_state=0, num_tables=20)

    def test_table_count_override(self, repository):
        assert len(repository) == 20

    def test_tables_have_key_and_value(self, repository):
        for entry in repository.tables:
            assert entry.table.column_names == ("key", "value")
            assert entry.table.column("key").dtype is DType.STRING
            # Dimension-like tables with unique keys are bounded by the covered
            # domain size; everything else respects the profile's row range.
            assert 2 <= entry.num_rows <= NYC_PROFILE.rows_range[1]

    def test_keys_come_from_declared_domain(self, repository):
        for entry in repository.tables[:5]:
            domain_values = set(repository.domains[entry.domain_name].values)
            assert set(entry.table.column("key").non_null_values()) <= domain_values

    def test_value_kinds_match_dtype(self, repository):
        for entry in repository.tables:
            dtype = entry.table.column("value").dtype
            if entry.value_kind == "numeric":
                assert dtype.is_numeric
            else:
                assert dtype is DType.STRING

    def test_both_value_kinds_present(self, repository):
        kinds = {entry.value_kind for entry in repository.tables}
        assert kinds == {"numeric", "string"}

    def test_reproducible(self):
        first = generate_repository("wbf", random_state=3, num_tables=5)
        second = generate_repository("wbf", random_state=3, num_tables=5)
        assert first.tables[0].table.column("key").values == (
            second.tables[0].table.column("key").values
        )

    def test_tables_for_domain(self, repository):
        domain = repository.tables[0].domain_name
        subset = repository.tables_for_domain(domain)
        assert subset and all(entry.domain_name == domain for entry in subset)

    def test_dependence_planted(self):
        """Tables with high dependence on the same domain share information."""
        from repro.estimators.mixed_ksg import MixedKSGEstimator
        from repro.relational.featurize import augment

        repository = generate_repository("nyc", random_state=11, num_tables=40)
        numeric = [
            entry
            for entry in repository.tables
            if entry.value_kind == "numeric" and entry.dependence > 0.8
        ]
        by_domain = {}
        for entry in numeric:
            by_domain.setdefault(entry.domain_name, []).append(entry)
        pair = next((tables[:2] for tables in by_domain.values() if len(tables) >= 2), None)
        assert pair is not None, "expected at least two strongly dependent tables"
        base, cand = pair
        augmented = augment(
            base.table, cand.table,
            base_key="key", candidate_key="key", candidate_value="value",
            agg="avg", feature_name="feature",
        ).drop_nulls(["feature", "value"])
        mi = MixedKSGEstimator().estimate(
            augmented.column("feature").values, augmented.column("value").values
        )
        assert mi > 0.15
