"""Tests for the simulated key domains."""

import numpy as np
import pytest

from repro.opendata.domains import (
    agency_code_domain,
    category_domain,
    country_code_domain,
    date_domain,
    zipcode_domain,
    zipf_weights,
)


class TestDomains:
    def test_zipcode_format(self):
        domain = zipcode_domain(10)
        assert len(domain) == 10
        assert all(len(value) == 5 and value.isdigit() for value in domain.values)

    def test_date_format_and_order(self):
        domain = date_domain(5)
        assert domain.values[0] == "2019-01-01"
        assert domain.values[-1] == "2019-01-05"

    def test_country_codes_distinct(self):
        domain = country_code_domain(100)
        assert len(set(domain.values)) == 100
        assert all(len(value) == 3 for value in domain.values)

    def test_agency_and_category_prefixes(self):
        assert agency_code_domain(3).values == ("AG-001", "AG-002", "AG-003")
        assert category_domain(2).values == ("category_01", "category_02")

    def test_subset_is_deterministic_given_seed(self):
        domain = zipcode_domain(100)
        assert domain.subset(10, 3) == domain.subset(10, 3)
        assert len(domain.subset(10, 3)) == 10

    def test_subset_capped_at_domain_size(self):
        domain = category_domain(4)
        assert len(domain.subset(100, 0)) == 4


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_uniform_when_exponent_zero(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)
