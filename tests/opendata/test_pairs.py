"""Tests for table-pair sampling from a simulated repository."""

import pytest

from repro.exceptions import SyntheticDataError
from repro.opendata.pairs import iter_all_pairs, sample_table_pairs
from repro.opendata.repository import generate_repository


@pytest.fixture(scope="module")
def repository():
    return generate_repository("nyc", random_state=1, num_tables=15)


class TestSampleTablePairs:
    def test_count_respected(self, repository):
        pairs = sample_table_pairs(repository, 10, random_state=0)
        assert len(pairs) == 10

    def test_same_domain_only(self, repository):
        pairs = sample_table_pairs(repository, 10, same_domain_only=True, random_state=0)
        assert all(pair.shares_domain for pair in pairs)

    def test_mixed_domains_allowed(self, repository):
        pairs = sample_table_pairs(
            repository, 30, same_domain_only=False, random_state=0
        )
        assert any(not pair.shares_domain for pair in pairs)

    def test_base_and_candidate_differ(self, repository):
        pairs = sample_table_pairs(repository, 20, random_state=2)
        assert all(pair.base.name != pair.candidate.name for pair in pairs)

    def test_describe(self, repository):
        pair = sample_table_pairs(repository, 1, random_state=3)[0]
        description = pair.describe()
        assert description["base"] == pair.base.name
        assert description["candidate_rows"] == pair.candidate.num_rows

    def test_invalid_count(self, repository):
        with pytest.raises(SyntheticDataError):
            sample_table_pairs(repository, 0)

    def test_deterministic(self, repository):
        first = sample_table_pairs(repository, 5, random_state=9)
        second = sample_table_pairs(repository, 5, random_state=9)
        assert [pair.base.name for pair in first] == [pair.base.name for pair in second]


class TestIterAllPairs:
    def test_count(self, repository):
        pairs = list(iter_all_pairs(repository))
        n = len(repository.tables)
        assert len(pairs) == n * (n - 1)
