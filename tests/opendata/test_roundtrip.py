"""Round-trip and determinism tests for the open-data repository simulator.

Repositories feed the paper's corpus-level experiments, so two invariants
matter: (a) a repository is a pure function of (profile, seed, size) — the
whole content, not just key columns, must be reproducible — and (b) its
tables survive a CSV round-trip through :mod:`repro.relational.csvio`
intact, because that is how simulated lakes are handed to the index-ingest
CLI.
"""

from __future__ import annotations

import io

import pytest

from repro.exceptions import SyntheticDataError
from repro.opendata.pairs import iter_all_pairs, sample_table_pairs
from repro.opendata.repository import generate_repository
from repro.relational.csvio import read_csv, write_csv
from repro.relational.dtypes import DType


@pytest.fixture(scope="module")
def repository():
    return generate_repository("nyc", random_state=5, num_tables=12)


class TestRepositoryDeterminism:
    def test_full_content_reproducible(self, repository):
        again = generate_repository("nyc", random_state=5, num_tables=12)
        assert len(again) == len(repository)
        for first, second in zip(repository.tables, again.tables):
            assert first.name == second.name
            assert first.domain_name == second.domain_name
            assert first.value_kind == second.value_kind
            assert first.dependence == second.dependence
            assert first.table.column("key").values == second.table.column("key").values
            assert (
                first.table.column("value").values
                == second.table.column("value").values
            )

    def test_different_seeds_differ(self, repository):
        other = generate_repository("nyc", random_state=6, num_tables=12)
        assert any(
            a.table.column("key").values != b.table.column("key").values
            for a, b in zip(repository.tables, other.tables)
        )


class TestPairDeterminism:
    def test_pairs_identical_not_just_names(self, repository):
        first = sample_table_pairs(repository, 8, random_state=4)
        second = sample_table_pairs(repository, 8, random_state=4)
        for a, b in zip(first, second):
            assert a.base is b.base and a.candidate is b.candidate
            assert a.shares_domain == b.shares_domain

    def test_exhaustion_raises(self):
        """A repository whose tables never share a domain cannot satisfy
        same-domain sampling; the sampler must fail loudly, not hang."""
        tiny = generate_repository("nyc", random_state=0, num_tables=2)
        if tiny.tables[0].domain_name == tiny.tables[1].domain_name:
            pytest.skip("seed produced a joinable pair; exhaustion not reachable")
        with pytest.raises(SyntheticDataError, match="could only sample"):
            sample_table_pairs(tiny, 3, same_domain_only=True, random_state=0)

    def test_single_table_repository_rejected(self):
        lonely = generate_repository("nyc", random_state=0, num_tables=1)
        with pytest.raises(SyntheticDataError, match="at least two"):
            sample_table_pairs(lonely, 1)

    def test_iter_all_pairs_is_ordered_and_distinct(self, repository):
        pairs = list(iter_all_pairs(repository))
        seen = {(pair.base.name, pair.candidate.name) for pair in pairs}
        assert len(seen) == len(pairs)
        assert all(pair.base.name != pair.candidate.name for pair in pairs)
        # Ordered pairs: both directions of every combination appear.
        first, second = repository.tables[0].name, repository.tables[1].name
        assert (first, second) in seen and (second, first) in seen


class TestCsvRoundTrip:
    def test_every_table_survives(self, repository):
        for entry in repository.tables[:6]:
            buffer = io.StringIO()
            write_csv(entry.table, buffer)
            buffer.seek(0)
            restored = read_csv(buffer, name=entry.name)
            assert restored.column_names == entry.table.column_names
            assert restored.column("key").dtype is DType.STRING
            assert restored.column("key").values == entry.table.column("key").values
            original = entry.table.column("value")
            value = restored.column("value")
            if entry.value_kind == "numeric":
                assert value.dtype.is_numeric
                assert all(
                    got == pytest.approx(want)
                    for got, want in zip(value.values, original.values)
                    if want is not None
                )
            else:
                assert value.dtype is DType.STRING
                assert value.values == original.values

    def test_file_round_trip(self, repository, tmp_path):
        entry = repository.tables[0]
        path = tmp_path / f"{entry.name}.csv"
        write_csv(entry.table, path)
        restored = read_csv(path, name=entry.name)
        assert restored.num_rows == entry.num_rows
        assert restored.column("key").values == entry.table.column("key").values
