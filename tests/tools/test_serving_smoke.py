"""Unit tests for the extracted CI serving smoke script (tools/serving_smoke.py)."""

from __future__ import annotations

import csv
import importlib.util
import sys
from pathlib import Path

import pytest

SMOKE_PATH = Path(__file__).parent.parent.parent / "tools" / "serving_smoke.py"

spec = importlib.util.spec_from_file_location("serving_smoke", SMOKE_PATH)
smoke = importlib.util.module_from_spec(spec)
sys.modules["serving_smoke"] = smoke
spec.loader.exec_module(smoke)


class TestFixture:
    def test_fixture_is_deterministic(self, tmp_path):
        first = smoke.write_fixture(tmp_path / "a", num_keys=20, seed=7)
        second = smoke.write_fixture(tmp_path / "b", num_keys=20, seed=7)
        for name in ("base.csv", "lake0.csv", "lake1.csv"):
            assert (first / name).read_text() == (second / name).read_text()

    def test_fixture_shape(self, tmp_path):
        fixture = smoke.write_fixture(tmp_path / "f", num_keys=15)
        with open(fixture / "base.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 15
        assert set(rows[0]) == {"key", "target"}
        with open(fixture / "lake0.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert set(rows[0]) == {"key", "signal", "noise"}

    def test_query_document_round_trips_the_base_table(self, tmp_path):
        fixture = smoke.write_fixture(tmp_path / "f", num_keys=10)
        document = smoke.build_query_document(fixture / "base.csv")
        assert document["key_column"] == "key"
        assert document["target_column"] == "target"
        columns = document["table"]["columns"]
        assert len(columns["key"]) == 10
        assert all(isinstance(value, float) for value in columns["target"])


GOOD_POOL = {
    "alive": 2,
    "worker_restarts": 0,
    "per_worker": {"0": {"completed": 1}, "1": {"completed": 0}},
    "shared_cache": {"hits": 0, "misses": 1},
}


def metrics_document(queries=1, pool=GOOD_POOL):
    service = {"counters": {"queries": queries}}
    if pool is not None:
        service["worker_pool"] = pool
    return {"service": service}


class TestChecks:
    def test_healthz_accepts_matching_execution(self):
        smoke.check_healthz({"status": "ok", "execution": "process"}, "process")

    def test_healthz_rejects_bad_status_or_mode(self):
        with pytest.raises(smoke.SmokeFailure, match="status"):
            smoke.check_healthz({"status": "sad", "execution": "thread"}, "thread")
        with pytest.raises(smoke.SmokeFailure, match="execution"):
            smoke.check_healthz({"status": "ok", "execution": "thread"}, "process")

    def test_query_response_requires_results(self):
        with pytest.raises(smoke.SmokeFailure, match="no results"):
            smoke.check_query_response({"results": []})
        top = smoke.check_query_response(
            {"results": [{"candidate_id": "c", "mi_estimate": 0.5}]}
        )
        assert top["candidate_id"] == "c"

    def test_metrics_requires_a_recorded_query(self):
        with pytest.raises(smoke.SmokeFailure, match="no queries"):
            smoke.check_metrics(metrics_document(queries=0), "thread", 2)
        smoke.check_metrics(metrics_document(), "thread", 2)

    def test_metrics_process_mode_requires_a_live_pool(self):
        with pytest.raises(smoke.SmokeFailure, match="worker_pool"):
            smoke.check_metrics(metrics_document(pool=None), "process", 2)
        with pytest.raises(smoke.SmokeFailure, match="live workers"):
            smoke.check_metrics(
                metrics_document(pool={**GOOD_POOL, "alive": 1}), "process", 2
            )
        with pytest.raises(smoke.SmokeFailure, match="completed"):
            smoke.check_metrics(
                metrics_document(
                    pool={**GOOD_POOL, "per_worker": {"0": {"completed": 0}}}
                ),
                "process",
                2,
            )
        smoke.check_metrics(metrics_document(), "process", 2)

    def test_thread_mode_ignores_pool_shape(self):
        smoke.check_metrics(metrics_document(pool=None), "thread", 2)


class TestServerBanner:
    class FakeProcess:
        def __init__(self, lines, returncode=None):
            self._lines = iter(lines)
            self.returncode = returncode
            self.stdout = self

        def readline(self):
            return next(self._lines, "")

        def poll(self):
            return self.returncode

    def test_parses_the_bound_address(self):
        process = self.FakeProcess(
            [
                "some startup noise\n",
                "serving lake.index (4 candidates, process execution) "
                "on http://127.0.0.1:45671 — POST /query\n",
            ]
        )
        assert smoke.wait_for_server(process) == "http://127.0.0.1:45671"

    def test_dead_server_fails_fast(self):
        process = self.FakeProcess(["boom\n"], returncode=1)
        with pytest.raises(smoke.SmokeFailure, match="exited with code 1"):
            smoke.wait_for_server(process)


class TestEndToEnd:
    def test_run_smoke_thread_mode(self):
        # The real thing, exactly as CI runs it (just a smaller fixture is
        # not worth plumbing: the default one serves 4 candidates).
        smoke.run_smoke("thread", 2)
