"""Unit tests for the lake fixture generator (tools/make_lake_fixture.py)."""

from __future__ import annotations

import csv
import importlib.util
import sys
from pathlib import Path

import pytest

FIXTURE_PATH = Path(__file__).parent.parent.parent / "tools" / "make_lake_fixture.py"

spec = importlib.util.spec_from_file_location("make_lake_fixture", FIXTURE_PATH)
lake_fixture = importlib.util.module_from_spec(spec)
sys.modules["make_lake_fixture"] = lake_fixture
spec.loader.exec_module(lake_fixture)


class TestMakeTable:
    def test_deterministic_for_a_seed(self):
        import random

        first = lake_fixture.make_table(
            random.Random(3), rows=50, keys=10, table_index=1
        )
        second = lake_fixture.make_table(
            random.Random(3), rows=50, keys=10, table_index=1
        )
        assert first == second

    def test_shape_and_types(self):
        import random

        data = lake_fixture.make_table(random.Random(0), rows=40, keys=8, table_index=2)
        assert set(data) == {"key", "v02_0", "v02_1", "v02_2", "count"}
        assert all(len(values) == 40 for values in data.values())
        assert all(key.startswith("k") for key in data["key"])
        assert all(isinstance(value, float) for value in data["v02_0"])
        assert all(value is None or isinstance(value, int) for value in data["count"])


class TestCsvLake:
    def test_csv_only_lake_layout(self, tmp_path):
        summary = lake_fixture.build_lake(
            tmp_path / "lake", tables=3, rows=20, keys=5, formats=["csv"]
        )
        assert summary["tables"] == ["lake000.csv", "lake001.csv", "lake002.csv"]
        assert (tmp_path / "lake" / "_SUCCESS").exists()
        with open(tmp_path / "lake" / "lake001.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 20
        assert "key" in rows[0] and "count" in rows[0]

    def test_null_counts_become_empty_csv_fields(self, tmp_path):
        lake_fixture.build_lake(
            tmp_path / "lake", tables=1, rows=200, keys=5, formats=["csv"]
        )
        with open(tmp_path / "lake" / "lake000.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert any(row["count"] == "" for row in rows)

    def test_deterministic_across_runs(self, tmp_path):
        for name in ("a", "b"):
            lake_fixture.build_lake(
                tmp_path / name, tables=2, rows=30, keys=6, seed=11, formats=["csv"]
            )
        for table in ("lake000.csv", "lake001.csv"):
            assert (tmp_path / "a" / table).read_text() == (
                tmp_path / "b" / table
            ).read_text()

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(lake_fixture.FixtureError, match="unknown format"):
            lake_fixture.build_lake(tmp_path / "lake", formats=["orc"])

    def test_empty_formats_raises(self, tmp_path):
        with pytest.raises(lake_fixture.FixtureError, match="at least one format"):
            lake_fixture.build_lake(tmp_path / "lake", formats=[])


class TestBaseCsv:
    def test_base_csv_one_row_per_key(self, tmp_path):
        lake_fixture.write_base_csv(tmp_path / "base.csv", keys=12, seed=1)
        with open(tmp_path / "base.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 12
        assert set(rows[0]) == {"key", "target"}
        assert rows[0]["key"] == "k0000"


class TestMain:
    def test_main_csv_only(self, tmp_path, capsys):
        code = lake_fixture.main(
            [
                str(tmp_path / "lake"),
                "--formats",
                "csv",
                "--tables",
                "2",
                "--rows",
                "25",
                "--keys",
                "5",
                "--base-csv",
                str(tmp_path / "base.csv"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote 2 lake tables" in out
        assert (tmp_path / "base.csv").exists()

    def test_main_bad_format_exits_2(self, tmp_path, capsys):
        code = lake_fixture.main([str(tmp_path / "lake"), "--formats", "avro"])
        assert code == 2
        assert "unknown format" in capsys.readouterr().err

    def test_main_parquet_without_pyarrow_exits_2(self, tmp_path, capsys, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def block_pyarrow(name, *args, **kwargs):
            if name.startswith("pyarrow"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", block_pyarrow)
        code = lake_fixture.main([str(tmp_path / "lake"), "--formats", "parquet"])
        assert code == 2
        assert "pyarrow" in capsys.readouterr().err


class TestParquetLake:
    def test_mixed_lake_round_robins_formats(self, tmp_path):
        pytest.importorskip("pyarrow")
        summary = lake_fixture.build_lake(
            tmp_path / "lake", tables=4, rows=30, keys=6
        )
        assert summary["tables"] == [
            "lake000.csv",
            "lake001.parquet",
            "lake002.csv",
            "lake003.parquet",
        ]

    def test_parquet_table_has_multiple_row_groups(self, tmp_path):
        pq = pytest.importorskip("pyarrow.parquet")
        lake_fixture.build_lake(
            tmp_path / "lake", tables=1, rows=90, keys=6, formats=["parquet"]
        )
        metadata = pq.ParquetFile(tmp_path / "lake" / "lake000.parquet").metadata
        assert metadata.num_row_groups > 1
        assert metadata.num_rows == 90
