"""Unit tests for the stdlib docs link checker (tools/check_links.py)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

CHECKER_PATH = Path(__file__).parent.parent.parent / "tools" / "check_links.py"

spec = importlib.util.spec_from_file_location("check_links", CHECKER_PATH)
check_links = importlib.util.module_from_spec(spec)
sys.modules["check_links"] = check_links
spec.loader.exec_module(check_links)


class TestLinkExtraction:
    def test_finds_inline_links_and_images(self):
        text = "See [docs](docs/architecture.md) and ![chart](img/chart.png)."
        assert list(check_links.iter_links(text)) == [
            "docs/architecture.md",
            "img/chart.png",
        ]

    def test_handles_titles_and_angle_brackets(self):
        text = '[a](file.md "a title") and [b](<other file.md>)'
        targets = list(check_links.iter_links(text))
        assert targets[0] == "file.md"
        assert targets[1] == "other file.md"  # angle brackets keep spaces

    def test_angle_bracket_target_with_spaces_resolves(self, tmp_path):
        page = tmp_path / "page.md"
        (tmp_path / "my file.md").write_text("x", encoding="utf-8")
        page.write_text("[doc](<my file.md>) [gone](<no such.md>)", encoding="utf-8")
        assert check_links.broken_links(page) == ["no such.md"]

    def test_ignores_plain_text_brackets(self):
        assert list(check_links.iter_links("no [link] here, just (parens)")) == []


class TestTargetClassification:
    def test_external_and_anchor_targets_skipped(self):
        assert check_links.classify_target("https://example.com/x.md") is None
        assert check_links.classify_target("http://example.com") is None
        assert check_links.classify_target("mailto:dev@example.com") is None
        assert check_links.classify_target("#section-anchor") is None

    def test_fragment_stripped_from_relative_targets(self):
        assert check_links.classify_target("docs/guide.md#setup") == "docs/guide.md"
        assert check_links.classify_target("../README.md") == "../README.md"


class TestBrokenLinkDetection:
    def test_resolves_relative_to_the_linking_file(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "guide.md").write_text("[up](../README.md)", encoding="utf-8")
        (tmp_path / "README.md").write_text("x", encoding="utf-8")
        assert check_links.broken_links(docs / "guide.md") == []

    def test_reports_missing_targets(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](#anchor) [gone](missing.md) [web](https://example.com)",
            encoding="utf-8",
        )
        assert check_links.broken_links(page) == ["missing.md"]

    def test_fragment_suffix_does_not_hide_a_broken_target(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[gone](missing.md#section)", encoding="utf-8")
        assert check_links.broken_links(page) == ["missing.md#section"]


class TestMainEntryPoint:
    def test_passes_on_healthy_file_set(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text(
            "[docs](docs/a.md)", encoding="utf-8"
        )
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text("[back](../README.md)", encoding="utf-8")
        assert check_links.main(["--root", str(tmp_path)]) == 0
        assert "all intra-repo links resolve" in capsys.readouterr().out

    def test_fails_on_broken_link(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("[gone](nope.md)", encoding="utf-8")
        assert check_links.main(["--root", str(tmp_path)]) == 1
        assert "nope.md" in capsys.readouterr().err

    def test_fails_on_missing_named_file(self, tmp_path, capsys):
        assert check_links.main([str(tmp_path / "absent.md")]) == 1
        assert "absent.md" in capsys.readouterr().err

    def test_checks_repo_docs(self):
        """The real repository's README/docs links must resolve."""
        assert check_links.main([]) == 0
