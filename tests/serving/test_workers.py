"""Tests for process-worker execution: identity, crashes, the shared cache.

The spawn-based tests reuse the module-scoped ``index_dir`` lake fixture so
each :class:`WorkerPool` pays the worker spawn + mmap-load cost against a
small index; the :class:`SharedResultCache` unit tests run the real cache
logic over a plain dict/Lock with a fake clock, no processes involved.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.exceptions import ServingError, WorkerCrashError
from repro.serving import (
    DiscoveryService,
    ServiceConfig,
    SharedResultCache,
    WorkerPool,
    query_fingerprint,
    result_to_dict,
    serve,
)
from repro.serving.workers import _picklable_error, _PoolRequest

from tests.serving.conftest import make_query


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def result_payload(results):
    return json.dumps(
        [result_to_dict(result) for result in results], sort_keys=True
    )


# --------------------------------------------------------------------- #
# SharedResultCache over plain (non-manager) state: pure logic tests
# --------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_cache(max_entries=4, ttl_seconds=10.0):
    clock = FakeClock()
    cache = SharedResultCache(
        {},
        {"hits": 0, "misses": 0},
        threading.Lock(),
        max_entries=max_entries,
        ttl_seconds=ttl_seconds,
        clock=clock,
    )
    return cache, clock


class TestSharedResultCache:
    def test_miss_then_hit_counts(self):
        cache, _ = make_cache()
        assert cache.get("fp") is None
        cache.put("fp", ["result"])
        assert cache.get("fp") == ["result"]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_entries_expire_after_ttl(self):
        cache, clock = make_cache(ttl_seconds=10.0)
        cache.put("fp", ["result"])
        clock.now = 9.9
        assert cache.get("fp") == ["result"]
        clock.now = 20.0
        assert cache.get("fp") is None
        assert cache.stats()["entries"] == 0  # expiry also evicts

    def test_oldest_entries_evicted_over_capacity(self):
        cache, clock = make_cache(max_entries=2, ttl_seconds=None)
        for position, key in enumerate(["a", "b", "c"]):
            clock.now = float(position)
            cache.put(key, [key])
        assert cache.get("a") is None  # the oldest went first
        assert cache.get("b") == ["b"]
        assert cache.get("c") == ["c"]
        assert cache.stats()["entries"] == 2

    def test_zero_capacity_disables_writes(self):
        cache, _ = make_cache(max_entries=0)
        cache.put("fp", ["result"])
        assert cache.get("fp") is None
        assert cache.stats()["entries"] == 0

    def test_handle_round_trip_shares_state(self):
        # No TTL: the reconstructed cache uses the real clock, not the fake.
        cache, _ = make_cache(ttl_seconds=None)
        cache.put("fp", ["result"])
        other = SharedResultCache.from_handle(cache.handle())
        assert other.get("fp") == ["result"]
        # Counter state is shared too: the hit above is visible on both.
        assert cache.stats()["hits"] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServingError, match="max_entries"):
            make_cache(max_entries=-1)
        with pytest.raises(ServingError, match="ttl_seconds"):
            make_cache(ttl_seconds=0)


class TestPicklableError:
    def test_plain_errors_pass_through(self):
        error = ValueError("boom")
        assert _picklable_error(error) is error

    def test_unpicklable_errors_become_serving_errors(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        stand_in = _picklable_error(Unpicklable("boom"))
        assert isinstance(stand_in, ServingError)
        assert "Unpicklable" in str(stand_in)


# --------------------------------------------------------------------- #
# Configuration and guard rails (no processes spawned)
# --------------------------------------------------------------------- #
class TestConfigValidation:
    def test_execution_knob_validated(self):
        with pytest.raises(ServingError, match="thread.*process"):
            ServiceConfig(execution="fork")

    def test_process_execution_requires_a_directory(self, lake):
        _, index = lake
        with pytest.raises(ServingError, match="index directory"):
            DiscoveryService(index, ServiceConfig(execution="process"))

    def test_register_table_refused_under_process_execution(self, index_dir):
        service = DiscoveryService(index_dir, ServiceConfig(execution="process"))
        with pytest.raises(ServingError, match="not supported under process"):
            service.register_table(object(), ["key"])
        service.close()

    def test_start_workers_is_a_no_op_in_thread_mode(self, index_dir):
        with DiscoveryService(index_dir) as service:
            assert service.start_workers() is None

    def test_pool_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ServingError, match="workers"):
            WorkerPool(tmp_path, workers=0)

    def test_dispatch_attempts_bound_fails_with_worker_crash_error(self, tmp_path):
        pool = WorkerPool(tmp_path, workers=1, max_dispatch_attempts=2)
        request = _PoolRequest("r1", "fp", None)
        request.attempts = 2  # already survived max_dispatch_attempts
        pool._dispatch(request)
        with pytest.raises(WorkerCrashError, match="dispatch attempts"):
            request.future.result(timeout=1)


# --------------------------------------------------------------------- #
# Process execution end-to-end (spawns real workers)
# --------------------------------------------------------------------- #
class TestProcessExecution:
    def test_answers_byte_identical_to_thread_execution(self, lake, index_dir):
        base, _ = lake
        query = make_query(base)
        with DiscoveryService(index_dir, ServiceConfig(workers=2)) as threaded:
            expected = threaded.query(query)
        with DiscoveryService(
            index_dir, ServiceConfig(workers=2, execution="process")
        ) as service:
            served = service.query(query)
            stats = service.stats()
        assert result_payload(served.results) == result_payload(expected.results)
        assert served.plan_stats == expected.plan_stats
        assert stats["execution"] == "process"
        pool_stats = stats["worker_pool"]
        assert pool_stats["workers"] == 2
        assert pool_stats["alive"] == 2
        assert pool_stats["worker_restarts"] == 0
        assert sum(
            entry["completed"] for entry in pool_stats["per_worker"].values()
        ) == 1
        assert pool_stats["shared_cache"]["entries"] == 1

    def test_parent_probes_the_shared_cache_after_l1_miss(self, lake, index_dir):
        base, _ = lake
        # No parent L1 (cache_entries=0): the only place the first answer
        # survives is the cross-worker shared cache, written by the worker
        # that computed it — so the second query must be served from there.
        with DiscoveryService(
            index_dir,
            ServiceConfig(workers=2, execution="process", cache_entries=0),
        ) as service:
            cold = service.query(make_query(base))
            warm = service.query(make_query(base))
            counters = service.stats()["counters"]
        assert not cold.cache_hit
        assert warm.cache_hit
        assert result_payload(warm.results) == result_payload(cold.results)
        assert counters["shared_cache_hits"] == 1

    def test_concurrent_identical_queries_stay_consistent(self, lake, index_dir):
        base, _ = lake
        query = make_query(base)
        with DiscoveryService(
            index_dir, ServiceConfig(workers=2, execution="process")
        ) as service:
            payloads = [None] * 4

            def run(slot):
                payloads[slot] = result_payload(service.query(query).results)

            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(len(payloads))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            counters = service.stats()["counters"]
            shared = service.stats()["worker_pool"]["shared_cache"]
        assert len(set(payloads)) == 1  # identical answers for everyone
        # Coalescing + caching mean exactly one computation reached a worker,
        # so the shared cache holds exactly the one fingerprint and its
        # counters reflect at most that one computed miss.
        assert counters["computed"] == 1
        assert shared["entries"] == 1
        assert shared["misses"] == 1

    def test_crashed_worker_request_is_redispatched(self, lake, index_dir):
        base, index = lake
        query = make_query(base)
        fingerprint = query_fingerprint(index.config, query, index_token="crash")
        with WorkerPool(index_dir, workers=1) as pool:
            # Queue a poison pill, then a real query behind it on the same
            # (only) worker: the worker dies mid-request, the monitor
            # respawns it and the orphaned query must be re-dispatched and
            # still answered correctly.
            pool.inject_crash(0)
            results, plan_stats, source = pool.execute(fingerprint, query)
            assert wait_until(lambda: pool.stats()["worker_restarts"] >= 1)
            stats = pool.stats()
        assert source == "computed"
        assert plan_stats["total_candidates"] == len(index)
        assert results
        assert stats["worker_restarts"] >= 1
        assert stats["redispatched"] >= 1
        assert stats["alive"] == 1

    def test_killed_idle_worker_is_replaced_without_5xx(self, lake, index_dir):
        base, _ = lake
        service = DiscoveryService(
            index_dir, ServiceConfig(workers=2, execution="process")
        )
        http_server = serve(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            pool = service.start_workers()
            assert wait_until(lambda: pool.stats()["alive"] == 2)
            # Kill one worker outright (as the OOM killer would).
            pool._handles[0].process.terminate()
            assert wait_until(
                lambda: pool.stats()["worker_restarts"] >= 1
                and pool.stats()["alive"] == 2
            )
            document = {
                "table": {"name": base.name, "columns": base.to_dict()},
                "key_column": "key",
                "target_column": "target",
                "top_k": 5,
                "min_containment": 0.1,
                "min_join_size": 8,
            }
            request = urllib.request.Request(
                http_server.url + "/query",
                data=json.dumps(document).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                assert response.status == 200
                answer = json.load(response)
            assert answer["results"]
            with urllib.request.urlopen(
                http_server.url + "/metrics", timeout=30
            ) as response:
                metrics = json.load(response)
            assert metrics["service"]["worker_pool"]["worker_restarts"] >= 1
            with urllib.request.urlopen(
                http_server.url + "/healthz", timeout=30
            ) as response:
                health = json.load(response)
            assert health["execution"] == "process"
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_closed_pool_fails_new_requests(self, lake, index_dir):
        base, index = lake
        query = make_query(base)
        pool = WorkerPool(index_dir, workers=1)
        pool.start()
        pool.close()
        with pytest.raises(ServingError, match="closed"):
            pool.execute(
                query_fingerprint(index.config, query, index_token="closed"), query
            )
