"""Tests for the DiscoveryService facade: lazy loading, caching, coalescing."""

import threading

import pytest

from repro.exceptions import DiscoveryError, ServingError
from repro.serving import (
    DiscoveryService,
    ServiceConfig,
    query_fingerprint,
)

from tests.serving.conftest import make_query


class TestLifecycle:
    def test_lazy_load_from_directory(self, lake, index_dir):
        base, _ = lake
        with DiscoveryService(index_dir, ServiceConfig(workers=2)) as service:
            assert not service.index_loaded
            served = service.query(make_query(base))
            assert service.index_loaded
            assert served.results
            assert service.stats()["counters"]["index_loads"] == 1

    def test_missing_directory_raises_discovery_error(self, tmp_path):
        service = DiscoveryService(tmp_path / "nope")
        with pytest.raises(DiscoveryError, match="no index.json"):
            service.ensure_ready()

    def test_wrapping_a_live_index(self, lake):
        base, index = lake
        with DiscoveryService(index) as service:
            assert service.index_loaded
            assert service.query(make_query(base)).results

    def test_bad_index_argument_rejected(self):
        with pytest.raises(ServingError, match="SketchIndex or a directory"):
            DiscoveryService(42)

    def test_closed_service_refuses_queries(self, lake):
        base, index = lake
        service = DiscoveryService(index)
        service.close()
        with pytest.raises(ServingError, match="closed"):
            service.query(make_query(base))


class TestServedResults:
    def test_results_identical_to_in_process_query(self, lake, index_dir):
        base, index = lake
        query = make_query(base)
        in_process = index.query(query)
        with DiscoveryService(index_dir) as service:
            served = service.query(query)
        assert [
            (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
            for r in served.results
        ] == [
            (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
            for r in in_process
        ]

    def test_cache_hit_on_identical_query(self, lake, index_dir):
        base, _ = lake
        with DiscoveryService(index_dir) as service:
            cold = service.query(make_query(base))
            warm = service.query(make_query(base))
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.fingerprint == cold.fingerprint
        assert warm.results == cold.results

    def test_mutating_a_served_result_does_not_corrupt_the_cache(
        self, lake, index_dir
    ):
        base, _ = lake
        with DiscoveryService(index_dir) as service:
            first = service.query(make_query(base))
            reference = [
                (r.candidate_id, r.mi_estimate, dict(r.metadata))
                for r in first.results
            ]
            # A careless caller post-processes the answer in place...
            first.results[0].metadata["seen"] = True
            first.results.clear()
            second = service.query(make_query(base))
        # ...and the cached answer stays pristine for everyone else.
        assert second.cache_hit
        assert [
            (r.candidate_id, r.mi_estimate, dict(r.metadata))
            for r in second.results
        ] == reference

    def test_cold_query_counts_exactly_one_cache_miss(self, lake, index_dir):
        """The under-lock cache re-probe must not double-count misses, or
        hit rates computed from /metrics are wrong."""
        base, _ = lake
        with DiscoveryService(index_dir) as service:
            service.query(make_query(base))
            service.query(make_query(base))
            stats = service.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_different_params_miss_the_cache(self, lake, index_dir):
        base, _ = lake
        with DiscoveryService(index_dir) as service:
            first = service.query(make_query(base, top_k=5))
            second = service.query(make_query(base, top_k=3))
        assert first.fingerprint != second.fingerprint
        assert not second.cache_hit

    def test_mutating_a_live_index_invalidates_cached_results(self, rng):
        """Overwriting a candidate bumps the index generation, so the next
        identical query recomputes instead of serving the stale answer."""
        from repro.discovery import SketchIndex
        from repro.engine import EngineConfig
        from repro.relational.table import Table

        keys = [f"k{i}" for i in range(100)]
        target = rng.normal(size=100)
        base = Table.from_dict(
            {"key": keys, "target": target.tolist()}, name="base"
        )
        index = SketchIndex(EngineConfig(capacity=64))
        correlated = Table.from_dict(
            {"key": keys, "feat": (target + 0.1 * rng.normal(size=100)).tolist()},
            name="cand",
        )
        index.add_table(correlated, ["key"])
        with DiscoveryService(index) as service:
            query = make_query(base, min_containment=0.0)
            before = service.query(query)
            # Re-index the same (table, key, value) names with pure noise:
            # same candidate_id, same index length, different sketches.
            noise = Table.from_dict(
                {"key": keys, "feat": rng.normal(size=100).tolist()}, name="cand"
            )
            index.add_table(noise, ["key"])
            after = service.query(query)
        assert after.fingerprint != before.fingerprint
        assert not after.cache_hit
        assert [r.mi_estimate for r in after.results] != [
            r.mi_estimate for r in before.results
        ]

    def test_empty_index_error_propagates(self, lake, tmp_path):
        from repro.discovery import SketchIndex, save_index
        from repro.engine import EngineConfig

        base, _ = lake
        empty_dir = tmp_path / "empty.index"
        save_index(SketchIndex(EngineConfig(capacity=64)), empty_dir)
        with DiscoveryService(empty_dir) as service:
            with pytest.raises(DiscoveryError, match="empty"):
                service.query(make_query(base))
            # Errors are not cached: the next identical query fails again.
            with pytest.raises(DiscoveryError, match="empty"):
                service.query(make_query(base))


class TestFingerprint:
    def test_stable_across_equal_queries(self, lake):
        base, index = lake
        a = query_fingerprint(index.config, make_query(base))
        b = query_fingerprint(index.config, make_query(base))
        assert a == b

    def test_sensitive_to_params_config_values_and_token(self, lake):
        base, index = lake
        reference = query_fingerprint(index.config, make_query(base))
        assert query_fingerprint(index.config, make_query(base, top_k=7)) != reference
        assert (
            query_fingerprint(index.config.replace(seed=99), make_query(base))
            != reference
        )
        assert (
            query_fingerprint(index.config, make_query(base), index_token="gen2")
            != reference
        )
        shuffled = make_query(
            base.take(list(reversed(range(base.num_rows)))).rename("base")
        )
        assert query_fingerprint(index.config, shuffled) != reference

    def test_insensitive_to_table_name_and_unused_columns(self, lake):
        base, index = lake
        renamed = make_query(base.rename("somebody-else"))
        assert query_fingerprint(index.config, renamed) == query_fingerprint(
            index.config, make_query(base)
        )
        projected = make_query(base.select(["key", "target"]))
        assert query_fingerprint(index.config, projected) == query_fingerprint(
            index.config, make_query(base)
        )


class TestConcurrency:
    def test_identical_concurrent_queries_coalesce_to_one_computation(
        self, lake, index_dir
    ):
        base, _ = lake
        num_clients = 8
        with DiscoveryService(index_dir, ServiceConfig(workers=4)) as service:
            service.ensure_ready()
            barrier = threading.Barrier(num_clients)
            outcomes = []
            lock = threading.Lock()

            def client():
                barrier.wait()
                served = service.query(make_query(base))
                with lock:
                    outcomes.append(served)

            threads = [threading.Thread(target=client) for _ in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()

        assert len(outcomes) == num_clients
        # Every client got the same answer...
        first = outcomes[0].results
        assert all(served.results == first for served in outcomes)
        # ...from exactly one computation: the rest coalesced or hit cache.
        assert stats["counters"]["computed"] == 1
        duplicates = num_clients - 1
        collapsed = stats["counters"].get("coalesced", 0) + stats["counters"].get(
            "cache_hits", 0
        )
        assert collapsed == duplicates

    def test_submit_resolves_even_with_one_worker(self, lake, index_dir):
        """submit() dispatches off-pool, so a single-worker pool cannot
        deadlock on the nested compute future."""
        base, _ = lake
        with DiscoveryService(index_dir, ServiceConfig(workers=1)) as service:
            futures = [service.submit(make_query(base)) for _ in range(4)]
            results = [future.result(timeout=60) for future in futures]
        assert all(served.results == results[0].results for served in results)

    def test_distinct_queries_run_concurrently(self, lake, index_dir):
        base, _ = lake
        with DiscoveryService(index_dir, ServiceConfig(workers=4)) as service:
            futures = [
                service.submit(make_query(base, top_k=k)) for k in (1, 2, 3, 4)
            ]
            lengths = [len(future.result(timeout=60).results) for future in futures]
        assert lengths == [1, 2, 3, 4]


class TestStats:
    def test_stats_shape(self, lake, index_dir):
        base, _ = lake
        with DiscoveryService(index_dir) as service:
            service.query(make_query(base))
            service.query(make_query(base))
            stats = service.stats()
        assert stats["index_loaded"] is True
        assert stats["index_candidates"] == 11
        assert stats["cache"]["hits"] == 1
        assert stats["counters"]["queries"] == 2
        assert stats["latency"]["query_cold"]["count"] == 1
        assert stats["latency"]["query_cached"]["count"] == 1

    def test_plan_counters_aggregate_per_computed_query(self, lake, index_dir):
        """Every computed query folds its planner stats into plan_<name>
        counters (the per-query numbers ride on ServedResult.plan_stats)."""
        base, _ = lake
        with DiscoveryService(index_dir, ServiceConfig(workers=2)) as service:
            first = service.query(make_query(base))
            cached = service.query(make_query(base))  # no plan ran
            second = service.query(make_query(base, top_k=3))
            counters = service.stats()["counters"]
        assert not first.cache_hit and cached.cache_hit
        for name in (
            "total_candidates",
            "survivors",
            "pruned_containment",
            "pruned_join_floor",
            "skipped_by_postings",
            "postings_probed",
        ):
            assert counters[f"plan_{name}"] == (
                first.plan_stats[name] + second.plan_stats[name]
            )
        # The persisted index carries a posting sidecar, so the disjoint
        # candidate is skipped without a containment evaluation.
        assert counters["plan_skipped_by_postings"] >= 2
        assert counters["plan_postings_probed"] > 0
        assert counters["plan_total_candidates"] == 22
        # Per-plan candidate accounting survives aggregation.
        assert counters["plan_total_candidates"] == (
            counters["plan_pruned_containment"]
            + counters["plan_pruned_join_floor"]
            + counters["plan_skipped_by_postings"]
            + counters["plan_survivors"]
        )

    def test_use_postings_false_forces_full_scans(self, lake, index_dir):
        base, _ = lake
        query = make_query(base)
        with DiscoveryService(index_dir, ServiceConfig(workers=2)) as probed:
            with_postings = probed.query(query)
        with DiscoveryService(
            index_dir, ServiceConfig(workers=2, use_postings=False)
        ) as scanned:
            without = scanned.query(query)
            counters = scanned.stats()["counters"]
        assert counters["plan_skipped_by_postings"] == 0
        assert counters["plan_postings_probed"] == 0
        assert with_postings.plan_stats["skipped_by_postings"] >= 1
        assert [
            (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
            for r in without.results
        ] == [
            (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
            for r in with_postings.results
        ]


class TestLiveRegistration:
    """register_table: streaming new tables into a serving index."""

    def build_setup(self):
        import numpy as np

        from repro.discovery import SketchIndex
        from repro.engine import EngineConfig, SketchEngine
        from repro.relational.table import Table

        rng = np.random.default_rng(23)
        keys = [f"k{i:04d}" for i in range(120)]
        target = rng.normal(size=120)
        base = Table.from_dict(
            {"key": keys, "target": target.tolist()}, name="base"
        )
        tables = []
        for position in range(3):
            row_keys = [keys[i] for i in rng.integers(0, 120, size=250)]
            tables.append(
                Table.from_dict(
                    {
                        "key": row_keys,
                        "signal": [
                            target[int(key[1:])] + 0.3 * rng.normal()
                            for key in row_keys
                        ],
                    },
                    name=f"live{position}",
                )
            )
        engine = lambda: SketchEngine(EngineConfig(capacity=64, seed=3))
        index = SketchIndex(engine())
        index.add_table(tables[0], ["key"])
        cold = SketchIndex(engine())
        for table in tables:
            cold.add_table(table, ["key"])
        return base, tables, index, cold

    def test_registration_invalidates_cache_and_matches_cold_index(self):
        from repro.ingest import InMemoryReader

        base, tables, index, cold = self.build_setup()
        query = make_query(base, min_join_size=4, top_k=5)
        with DiscoveryService(index, ServiceConfig(workers=2)) as service:
            first = service.query(query)
            assert service.query(query).cache_hit
            ids = service.register_table(
                InMemoryReader(tables[1], chunk_size=64), ["key"]
            )
            ids += service.register_table(tables[2], ["key"])
            assert ids == ["live1:key->signal#avg", "live2:key->signal#avg"]
            after = service.query(query)
            assert not after.cache_hit and not after.coalesced
            cold_results = cold.query(query)
            assert [
                (result.candidate_id, result.mi_estimate)
                for result in after.results
            ] == [
                (result.candidate_id, result.mi_estimate)
                for result in cold_results
            ]
            assert len(after.results) > len(first.results)
            stats = service.stats()
            assert stats["counters"]["tables_registered"] == 2
            assert stats["counters"]["candidates_registered"] == 2

    def test_closed_service_rejects_registration(self):
        base, tables, index, _ = self.build_setup()
        service = DiscoveryService(index, ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServingError, match="closed"):
            service.register_table(tables[1], ["key"])
