"""Tests for the query planner: pruning is invisible, counters are not."""

import numpy as np
import pytest

from repro.discovery.query import AugmentationResult
from repro.discovery.ranking import rank_results
from repro.engine import EngineConfig, SketchEngine
from repro.exceptions import InsufficientSamplesError
from repro.relational.table import Table
from repro.serving.planner import QueryPlanner

from tests.serving.conftest import make_query


def unplanned_query(index, query):
    """The historical SketchIndex.query implementation, kept as the oracle:
    containment filter, estimate every joinable candidate, full sort."""
    engine = index.engine
    base_sketch = engine.sketch_base(query.table, query.key_column, query.target_column)
    base_kmv = engine.key_sketch(query.table, query.key_column)
    joinable = [
        (candidate, base_kmv.containment_estimate(candidate.key_kmv))
        for candidate in index.candidates
    ]
    joinable = [(c, cont) for c, cont in joinable if cont >= query.min_containment]
    results = []
    for candidate, containment in joinable:
        try:
            estimate = engine.estimate(
                base_sketch, candidate.sketch, min_join_size=query.min_join_size
            )
        except InsufficientSamplesError:
            continue
        results.append(
            AugmentationResult(
                candidate_id=candidate.candidate_id,
                table_name=candidate.profile.table_name,
                key_column=candidate.profile.key_column,
                value_column=candidate.profile.value_column,
                aggregate=candidate.aggregate,
                estimator=estimate.estimator,
                mi_estimate=estimate.mi,
                sketch_join_size=estimate.join_size,
                containment=containment,
                value_dtype=candidate.profile.value_dtype.value,
                metadata=dict(candidate.metadata),
            )
        )
    ranked = rank_results(results)
    return ranked[: query.top_k] if query.top_k else ranked


class TestPlanEquivalence:
    def test_planned_results_identical_to_unplanned_oracle(self, lake):
        base, index = lake
        for query in (
            make_query(base),
            make_query(base, min_containment=0.0, top_k=0),
            make_query(base, min_join_size=40),
            make_query(base, target_column="other"),
        ):
            planned = QueryPlanner(index.engine).run(index.candidates, query)
            oracle = unplanned_query(index, query)
            assert [
                (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
                for r in planned
            ] == [
                (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
                for r in oracle
            ]

    def test_index_query_delegates_to_planner(self, lake):
        base, index = lake
        query = make_query(base)
        assert [r.candidate_id for r in index.query(query)] == [
            r.candidate_id for r in QueryPlanner(index.engine).run(index.candidates, query)
        ]


class TestPruning:
    def test_containment_prunes_disjoint_candidates(self, lake):
        base, index = lake
        plan = QueryPlanner(index.engine).plan(index.candidates, make_query(base))
        stats = plan.stats()
        # The "disjoint" table contributes 1 candidate with zero containment.
        assert stats["pruned_containment"] >= 1
        assert stats["survivors"] + plan.pruned == stats["total_candidates"]

    def test_unreachable_join_floor_short_circuits(self, lake):
        """A base sketch smaller than min_join_size can never satisfy it, so
        the whole candidate set is pruned without estimating anything."""
        base, index = lake
        query = make_query(base, min_join_size=10_000)
        planner = QueryPlanner(index.engine)
        plan = planner.plan(index.candidates, query)
        assert plan.survivors == []
        assert plan.pruned_join_floor == plan.total_candidates
        assert planner.execute(plan, query) == []

    def test_tiny_candidate_sketch_pruned_by_join_floor(self):
        """A candidate whose sketch is provably too small to reach the join
        floor is pruned, and the answer matches the unpruned path (both
        empty for that candidate)."""
        engine = SketchEngine(EngineConfig(capacity=64))
        rng = np.random.default_rng(1)
        keys = [f"k{i}" for i in range(100)]
        base = Table.from_dict(
            {"key": keys, "target": rng.normal(size=100).tolist()}, name="base"
        )
        from repro.discovery import SketchIndex

        index = SketchIndex(engine)
        tiny = Table.from_dict(
            {"key": keys[:3], "value": rng.normal(size=3).tolist()}, name="tiny"
        )
        index.add_table(tiny, ["key"])
        query = make_query(base, min_containment=0.0, min_join_size=16)
        plan = QueryPlanner(engine).plan(index.candidates, query)
        assert plan.pruned_join_floor == 1
        assert index.query(query) == []


class TestBoundedTopK:
    def test_top_k_results_matches_full_sort_with_ties(self):
        def result(mi, join, name):
            return AugmentationResult(
                candidate_id=name,
                table_name="t",
                key_column="k",
                value_column="v",
                aggregate="avg",
                estimator="MLE",
                mi_estimate=mi,
                sketch_join_size=join,
                containment=1.0,
                value_dtype="float",
            )

        from repro.discovery.ranking import top_k_results

        results = [
            result(0.5, 10, "a"),
            result(0.5, 10, "b"),  # full tie with "a": input order must hold
            result(0.9, 5, "c"),
            result(0.5, 99, "d"),
            result(0.1, 1, "e"),
        ]
        for k in (1, 2, 3, 4, 5, 17):
            assert top_k_results(results, k) == rank_results(results)[:k]
        assert top_k_results(results, 0) == rank_results(results)

    def test_execute_truncates_to_top_k(self, lake):
        base, index = lake
        planner = QueryPlanner(index.engine)
        full = planner.run(index.candidates, make_query(base, top_k=0))
        top2 = planner.run(index.candidates, make_query(base, top_k=2))
        assert len(full) > 2
        assert top2 == full[:2]


class TestErrorPropagation:
    def test_non_join_errors_are_raised(self, lake):
        base, index = lake
        query = make_query(base, key_column="nope")
        with pytest.raises(Exception):
            QueryPlanner(index.engine).run(index.candidates, query)


def lake_postings(index):
    """A posting index over the lake fixture, built out-of-band so the
    module-scoped fixture index stays untouched."""
    from repro.postings import PostingsIndex

    return PostingsIndex.from_entries(
        (candidate.candidate_id, candidate.key_kmv.hashes)
        for candidate in index.candidates
    )


def assert_stats_sum_invariant(plan):
    """Every candidate is accounted for exactly once, whatever the path."""
    stats = plan.stats()
    assert stats["total_candidates"] == (
        stats["pruned_containment"]
        + stats["pruned_join_floor"]
        + stats["skipped_by_postings"]
        + stats["survivors"]
    )
    assert plan.pruned == (
        stats["pruned_containment"]
        + stats["pruned_join_floor"]
        + stats["skipped_by_postings"]
    )
    assert stats["total_candidates"] == plan.pruned + stats["survivors"]


class TestStatsInvariants:
    """total_candidates == pruned + survivors, on every planning path."""

    def test_normal_plan(self, lake):
        base, index = lake
        plan = QueryPlanner(index.engine).plan(index.candidates, make_query(base))
        assert_stats_sum_invariant(plan)

    def test_base_short_circuit(self, lake):
        """The min_join_size base short-circuit books the whole candidate
        set under pruned_join_floor — nothing is double- or un-counted."""
        base, index = lake
        plan = QueryPlanner(index.engine).plan(
            index.candidates, make_query(base, min_join_size=10_000)
        )
        assert plan.pruned_join_floor == plan.total_candidates
        assert plan.survivors == []
        assert_stats_sum_invariant(plan)

    def test_base_short_circuit_with_postings(self, lake):
        """The short-circuit fires before any probe: postings_probed stays 0
        and the invariant holds with a posting index supplied."""
        base, index = lake
        plan = QueryPlanner(index.engine).plan(
            index.candidates,
            make_query(base, min_join_size=10_000),
            postings=lake_postings(index),
        )
        assert plan.postings_probed == 0
        assert plan.skipped_by_postings == 0
        assert plan.pruned_join_floor == plan.total_candidates
        assert_stats_sum_invariant(plan)

    def test_postings_plan(self, lake):
        base, index = lake
        plan = QueryPlanner(index.engine).plan(
            index.candidates, make_query(base), postings=lake_postings(index)
        )
        assert_stats_sum_invariant(plan)

    def test_zero_min_containment_disables_the_probe(self, lake):
        base, index = lake
        plan = QueryPlanner(index.engine).plan(
            index.candidates,
            make_query(base, min_containment=0.0),
            postings=lake_postings(index),
        )
        assert plan.postings_probed == 0
        assert plan.skipped_by_postings == 0
        assert_stats_sum_invariant(plan)


class TestPostingsCandidateGeneration:
    def test_probe_skips_disjoint_candidate_without_changing_survivors(
        self, lake
    ):
        base, index = lake
        planner = QueryPlanner(index.engine)
        query = make_query(base)
        scanned = planner.plan(index.candidates, query)
        probed = planner.plan(
            index.candidates, query, postings=lake_postings(index)
        )
        # The disjoint-key candidate shares no retained hash with the base,
        # so the probe skips it before the containment evaluation it would
        # have failed anyway.
        assert probed.skipped_by_postings >= 1
        assert probed.postings_probed == len(probed.base_kmv.hashes)
        assert probed.skipped_by_postings + probed.pruned_containment == (
            scanned.pruned_containment
        )
        assert [
            (planned.candidate.candidate_id, planned.containment)
            for planned in probed.survivors
        ] == [
            (planned.candidate.candidate_id, planned.containment)
            for planned in scanned.survivors
        ]

    def test_results_identical_with_and_without_postings(self, lake):
        base, index = lake
        planner = QueryPlanner(index.engine)
        for query in (
            make_query(base),
            make_query(base, top_k=2),
            make_query(base, target_column="other"),
            make_query(base, min_join_size=40),
        ):
            scanned = planner.run(index.candidates, query)
            probed = planner.run(
                index.candidates, query, postings=lake_postings(index)
            )
            assert [
                (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
                for r in probed
            ] == [
                (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
                for r in scanned
            ]

    def test_index_query_uses_attached_postings(self, lake):
        base, index = lake
        reference = [r.candidate_id for r in index.query(make_query(base))]
        from repro.discovery import SketchIndex

        clone = SketchIndex(index.engine)
        for candidate in index.candidates:
            clone.add_prebuilt(candidate)
        clone.enable_postings()
        assert [r.candidate_id for r in clone.query(make_query(base))] == reference
        assert [
            r.candidate_id
            for r in clone.query(make_query(base), use_postings=False)
        ] == reference
