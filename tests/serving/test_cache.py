"""Tests for the LRU+TTL result cache."""

import pytest

from repro.exceptions import ServingError
from repro.serving.cache import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLRU:
    def test_get_put_round_trip(self):
        cache = ResultCache(max_entries=4, ttl_seconds=None)
        cache.put("a", [1, 2])
        assert cache.get("a") == [1, 2]
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2, ttl_seconds=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_zero_entries_disables_caching(self):
        cache = ResultCache(max_entries=0, ttl_seconds=None)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_cached_empty_list_is_a_hit(self):
        """An empty result list is a legitimate answer, not a miss."""
        cache = ResultCache(max_entries=2, ttl_seconds=None)
        cache.put("a", [])
        assert cache.get("a") == []
        assert cache.stats()["hits"] == 1

    def test_invalidate(self):
        cache = ResultCache(max_entries=4, ttl_seconds=None)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        assert cache.get("a") is None
        cache.invalidate()
        assert cache.get("b") is None
        assert len(cache) == 0


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 0

    def test_refresh_resets_ttl(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2

    def test_none_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1


class TestValidationAndStats:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ServingError, match="max_entries"):
            ResultCache(max_entries=-1)

    def test_non_positive_ttl_rejected(self):
        with pytest.raises(ServingError, match="ttl_seconds"):
            ResultCache(ttl_seconds=0.0)

    def test_unrecorded_get_leaves_counters_untouched(self):
        cache = ResultCache(max_entries=2, ttl_seconds=None)
        cache.put("a", 1)
        assert cache.get("a", record=False) == 1
        assert cache.get("b", record=False) is None
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_stats_counters(self):
        cache = ResultCache(max_entries=2, ttl_seconds=None)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["max_entries"] == 2
