"""Tests for the HTTP front end: endpoints, wire format, byte-identity."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import DiscoveryService, ServiceConfig, result_to_dict, serve

from tests.serving.conftest import make_query


@pytest.fixture()
def server(index_dir):
    service = DiscoveryService(index_dir, ServiceConfig(workers=2))
    http_server = serve(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()
    thread.join(timeout=10)


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post_json(url, document):
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.load(response)


def query_document(base, **overrides):
    query = make_query(base, **overrides)
    return {
        "table": {"name": query.table.name, "columns": query.table.to_dict()},
        "key_column": query.key_column,
        "target_column": query.target_column,
        "top_k": query.top_k,
        "min_containment": query.min_containment,
        "min_join_size": query.min_join_size,
    }


class TestHealthz:
    def test_healthz_is_cheap_and_does_not_load_the_index(self, server):
        status, document = get_json(server.url + "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["index_loaded"] is False  # still lazy

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server.url + "/nope")
        assert excinfo.value.code == 404


class TestQuery:
    def test_served_results_byte_identical_to_in_process(self, lake, server):
        base, index = lake
        status, document = post_json(server.url + "/query", query_document(base))
        assert status == 200
        in_process = index.query(make_query(base))
        # Byte-identical through JSON: same IDs, same floats, same order.
        assert json.dumps(document["results"], sort_keys=True) == json.dumps(
            [result_to_dict(result) for result in in_process], sort_keys=True
        )
        assert document["plan"]["total_candidates"] == 11

    def test_second_identical_query_is_a_cache_hit(self, lake, server):
        base, _ = lake
        _, cold = post_json(server.url + "/query", query_document(base))
        _, warm = post_json(server.url + "/query", query_document(base))
        assert cold["cache_hit"] is False
        assert warm["cache_hit"] is True
        assert warm["results"] == cold["results"]
        assert warm["fingerprint"] == cold["fingerprint"]

    def test_optional_fields_default(self, lake, server):
        base, _ = lake
        document = query_document(base)
        for optional in ("top_k", "min_containment", "min_join_size"):
            document.pop(optional)
        status, answer = post_json(server.url + "/query", document)
        assert status == 200
        assert len(answer["results"]) <= 10  # AugmentationQuery default top_k


class TestQueryErrors:
    def assert_400(self, server, document, match):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server.url + "/query", document)
        assert excinfo.value.code == 400
        error = json.load(excinfo.value)["error"]
        assert match in error

    def test_missing_fields(self, lake, server):
        self.assert_400(server, {"key_column": "key"}, "missing query fields")

    def test_unknown_fields_name_the_accepted_set(self, lake, server):
        base, _ = lake
        document = query_document(base)
        document["bogus"] = 1
        self.assert_400(server, document, "accepted fields")

    def test_non_json_body(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_empty_body(self, server):
        request = urllib.request.Request(server.url + "/query", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_wrong_typed_optional_field_is_a_400(self, lake, server):
        """A string min_join_size must be rejected up front, not surface as
        an internal 500 from deep inside the planner."""
        base, _ = lake
        document = query_document(base)
        document["min_join_size"] = "16"
        self.assert_400(server, document, "min_join_size")
        document = query_document(base)
        document["top_k"] = True
        self.assert_400(server, document, "top_k")
        document = query_document(base)
        document["min_containment"] = 0.5
        status, _ = post_json(server.url + "/query", document)  # numbers are fine
        assert status == 200

    def test_missing_column_is_a_client_error(self, lake, server):
        base, _ = lake
        document = query_document(base)
        document["key_column"] = "nope"
        self.assert_400(server, document, "nope")


class TestKeepAliveHygiene:
    """Paths that skip reading a POST body must close the connection, or the
    unread bytes desynchronize every later request on the keep-alive socket."""

    def post_raw(self, server, path, body, headers=None):
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("POST", path, body=body, headers=headers or {})
            response = connection.getresponse()
            response.read()
            return response
        finally:
            connection.close()

    def test_post_to_unknown_path_with_body_closes_connection(self, server):
        response = self.post_raw(server, "/nope", b'{"x": 1}')
        assert response.status == 404
        assert response.getheader("Connection") == "close"

    def test_oversize_body_closes_connection(self, server):
        from repro.serving import http as serving_http

        response = self.post_raw(
            server,
            "/query",
            b"",
            headers={"Content-Length": str(serving_http.MAX_BODY_BYTES + 1)},
        )
        assert response.status == 413
        assert response.getheader("Connection") == "close"

    def test_bad_content_length_closes_connection(self, server):
        response = self.post_raw(
            server, "/query", b"", headers={"Content-Length": "banana"}
        )
        assert response.status == 400
        assert response.getheader("Connection") == "close"

    def test_healthy_request_keeps_the_connection_open(self, lake, server):
        import http.client

        base, _ = lake
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            body = json.dumps(query_document(base)).encode("utf-8")
            for _ in range(2):  # two requests down one keep-alive socket
                connection.request("POST", "/query", body=body)
                response = connection.getresponse()
                answer = json.loads(response.read())
                assert response.status == 200
                assert answer["results"]
        finally:
            connection.close()


class TestServerFaults:
    def serve_and_post(self, service, document):
        http_server = serve(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(http_server.url + "/query", document)
            return excinfo.value
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_unloadable_index_is_a_500_not_a_400(self, lake, tmp_path):
        """A missing/corrupt index directory is a server fault: clients did
        nothing wrong and must see a 5xx."""
        base, _ = lake
        error = self.serve_and_post(
            DiscoveryService(tmp_path / "no-such-index"), query_document(base)
        )
        assert error.code == 500
        assert "index unavailable" in json.load(error)["error"]

    def test_closed_service_is_a_503(self, lake, index_dir):
        """A request racing shutdown gets a retryable 5xx, not a 400."""
        base, _ = lake
        service = DiscoveryService(index_dir)
        service.ensure_ready()
        service.close()
        error = self.serve_and_post(service, query_document(base))
        assert error.code == 503
        assert "closed" in json.load(error)["error"]

    def test_empty_served_index_is_a_500(self, lake):
        """An index with zero candidates is broken server state, not a bad
        request."""
        from repro.discovery import SketchIndex
        from repro.engine import EngineConfig

        base, _ = lake
        error = self.serve_and_post(
            DiscoveryService(SketchIndex(EngineConfig(capacity=64))),
            query_document(base),
        )
        assert error.code == 500
        assert "empty" in json.load(error)["error"]


class TestMetrics:
    def test_metrics_counts_requests_per_endpoint(self, lake, server):
        base, _ = lake
        get_json(server.url + "/healthz")
        post_json(server.url + "/query", query_document(base))
        post_json(server.url + "/query", query_document(base))
        status, document = get_json(server.url + "/metrics")
        assert status == 200
        counters = document["http"]["counters"]
        assert counters["healthz_requests"] == 1
        assert counters["query_requests"] == 2
        latency = document["http"]["latency"]["query"]
        assert latency["count"] == 2
        assert latency["p50_seconds"] is not None
        service = document["service"]
        assert service["counters"]["cache_hits"] == 1
        assert service["cache"]["size"] == 1
