"""Shared fixtures for the serving-layer tests: a small lake index on disk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import SketchIndex, save_index
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.relational.table import Table

NUM_KEYS = 300


@pytest.fixture(scope="module")
def lake():
    """A base table and a populated in-memory index over five candidates."""
    rng = np.random.default_rng(7)
    keys = [f"k{i:04d}" for i in range(NUM_KEYS)]
    target = rng.normal(size=NUM_KEYS)
    base = Table.from_dict(
        {"key": keys, "target": target.tolist(), "other": rng.normal(size=NUM_KEYS).tolist()},
        name="base",
    )
    index = SketchIndex(SketchEngine(EngineConfig(capacity=64, seed=3)))
    for position in range(5):
        noise = 0.2 + 0.6 * position
        table = Table.from_dict(
            {
                "key": keys,
                "signal": (target + noise * rng.normal(size=NUM_KEYS)).tolist(),
                "junk": rng.normal(size=NUM_KEYS).tolist(),
            },
            name=f"lake{position}",
        )
        index.add_table(table, ["key"])
    # One candidate with disjoint keys, to exercise the containment filter.
    disjoint = Table.from_dict(
        {"key": [f"zz{i}" for i in range(NUM_KEYS)], "value": rng.normal(size=NUM_KEYS).tolist()},
        name="disjoint",
    )
    index.add_table(disjoint, ["key"])
    return base, index


@pytest.fixture(scope="module")
def index_dir(lake, tmp_path_factory):
    """The lake index persisted to a directory (the service's input)."""
    _, index = lake
    directory = tmp_path_factory.mktemp("lake") / "lake.index"
    save_index(index, directory)
    return directory


def make_query(base, **overrides):
    defaults = dict(
        table=base,
        key_column="key",
        target_column="target",
        top_k=5,
        min_containment=0.1,
        min_join_size=8,
    )
    defaults.update(overrides)
    return AugmentationQuery(**defaults)
