"""End-to-end durability of the maintained serving path.

Covers the three service contracts the maintenance subsystem adds:

* **thread + WAL** — registrations are durable *and* read-your-write: a
  restarted service replays pending deltas before its first answer, even
  when no compaction ever ran;
* **process + WAL** — registrations are durable and eventually consistent:
  the background compaction publishes a new generation and every worker
  re-mmaps it in place, with answers byte-identical to a clean build;
* **process without WAL** — still refused, with the error naming the WAL
  requirement (``repro index log --init``).

The crash test SIGKILLs a registering service process and asserts the
restarted service recovers the registration and answers byte-identically
to an index that never crashed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.discovery import save_index
from repro.exceptions import ServingError
from repro.serving import DiscoveryService, ServiceConfig, result_to_dict, serve
from tests.maintenance.conftest import (
    fresh_index,
    make_base,
    make_query,
    make_table,
)


def dump(results) -> str:
    return json.dumps([result_to_dict(r) for r in results], sort_keys=True)


def result_tables(results) -> set[str]:
    return {result.table_name for result in results}


class TestThreadMode:
    def test_registration_survives_restart_without_compaction(self, maintained_dir):
        """The delta only ever lives in the WAL here — no compaction runs —
        yet the restarted service replays it before its first answer."""
        base = make_base()
        with DiscoveryService(maintained_dir, ServiceConfig(workers=2)) as service:
            ids = service.register_table(make_table("fresh", seed=77), ["key"])
            assert len(ids) == 2
            before = dump(service.query(make_query(base)).results)
            assert "fresh" in result_tables(service.query(make_query(base)).results)
            assert service.metrics.snapshot()["counters"]["deltas_logged"] == 1

        with DiscoveryService(maintained_dir, ServiceConfig(workers=2)) as restarted:
            names = {
                candidate.profile.table_name
                for candidate in restarted.ensure_ready().candidates
            }
            assert "fresh" in names
            assert dump(restarted.query(make_query(base)).results) == before
            replayed = restarted.metrics.snapshot()["counters"]["deltas_replayed"]
            assert replayed == 1

    def test_plain_directory_keeps_todays_volatile_behavior(self, tmp_path):
        """Thread mode without a WAL still registers — in memory only."""
        index = fresh_index()
        index.add_table(make_table("lake0", seed=20), ["key"])
        plain = tmp_path / "plain.index"
        save_index(index, plain)
        base = make_base()
        with DiscoveryService(plain, ServiceConfig(workers=2)) as service:
            service.register_table(make_table("fresh", seed=77), ["key"])
            assert "fresh" in result_tables(service.query(make_query(base)).results)
        with DiscoveryService(plain, ServiceConfig(workers=2)) as restarted:
            served = result_tables(restarted.query(make_query(base)).results)
            assert "fresh" not in served  # volatile: lost on restart


class TestProcessMode:
    def test_without_wal_registration_refused_naming_the_requirement(self, tmp_path):
        index = fresh_index()
        index.add_table(make_table("lake0", seed=20), ["key"])
        plain = tmp_path / "plain.index"
        save_index(index, plain)
        with DiscoveryService(
            plain, ServiceConfig(execution="process", workers=1)
        ) as service:
            with pytest.raises(ServingError, match="repro index log"):
                service.register_table(make_table("fresh", seed=77), ["key"])

    def test_live_registration_reloads_the_workers(self, maintained_dir):
        base = make_base()
        service = DiscoveryService(
            maintained_dir,
            ServiceConfig(
                execution="process",
                workers=1,
                cache_entries=0,
                shared_cache_entries=0,
            ),
        )
        try:
            maintainer = service.start_maintenance()
            assert maintainer is not None  # bootstrap published generation 1
            assert service.published_generation() == 1
            service.start_workers()
            first = service.query(make_query(base)).results
            assert "fresh" not in result_tables(first)

            service.register_table(make_table("fresh", seed=77), ["key"])
            deadline = time.time() + 120.0
            while time.time() < deadline:
                if (service.published_generation() or 0) >= 2:
                    break
                time.sleep(0.05)
            assert service.published_generation() == 2

            # The very next computed query must see the new generation: the
            # worker re-mmaps in place before answering.
            served = service.query(make_query(base)).results
            assert "fresh" in result_tables(served)

            stats = service.stats()
            assert stats["worker_pool"]["worker_reloads"] >= 1
            assert stats["maintenance"]["pending_deltas"] == 0
            assert stats["maintenance"]["compactions"] >= 1
        finally:
            service.close()

    def test_process_answers_match_a_clean_build(self, maintained_dir):
        """Folded generations answer byte-identically to an index built with
        every table from the start."""
        base = make_base()
        clean = fresh_index()
        for position in range(2):
            clean.add_table(make_table(f"lake{position}", seed=20 + position), ["key"])
        clean.add_table(make_table("fresh", seed=77), ["key"])
        expected = dump(clean.query(make_query(base)))

        service = DiscoveryService(
            maintained_dir,
            ServiceConfig(
                execution="process",
                workers=1,
                cache_entries=0,
                shared_cache_entries=0,
            ),
        )
        try:
            service.start_maintenance()
            service.register_table(make_table("fresh", seed=77), ["key"])
            deadline = time.time() + 120.0
            while time.time() < deadline:
                if (service.published_generation() or 0) >= 2:
                    break
                time.sleep(0.05)
            assert dump(service.query(make_query(base)).results) == expected
        finally:
            service.close()


#: Registers one table durably through a process-mode service, acknowledges,
#: then hangs until the parent SIGKILLs it.  No workers and no maintainer are
#: started: the delta must survive in the WAL alone.
_REGISTRAR = """
import json, sys, time
from repro.relational.table import Table
from repro.serving import DiscoveryService, ServiceConfig

index_dir, table_path, ack_path = sys.argv[1], sys.argv[2], sys.argv[3]
document = json.load(open(table_path))
table = Table.from_dict(document["columns"], name=document["name"])
service = DiscoveryService(index_dir, ServiceConfig(execution="process", workers=1))
service.register_table(table, ["key"])
with open(ack_path, "w") as handle:
    handle.write("registered")
time.sleep(600)
"""


class TestCrashRecovery:
    def test_sigkilled_registration_survives_restart_byte_identically(
        self, maintained_dir, tmp_path
    ):
        fresh = make_table("fresh", seed=77)
        table_path = tmp_path / "fresh.json"
        table_path.write_text(
            json.dumps({"name": fresh.name, "columns": fresh.to_dict()}),
            encoding="utf-8",
        )
        ack = tmp_path / "ack"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _REGISTRAR,
                str(maintained_dir),
                str(table_path),
                str(ack),
            ],
            env=env,
        )
        try:
            deadline = time.time() + 120.0
            while time.time() < deadline and not ack.exists():
                assert child.poll() is None, "the registrar child died early"
                time.sleep(0.02)
            assert ack.exists(), "the registrar child never acknowledged"
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=60)

        # A clean build that never crashed is the reference answer.
        base = make_base()
        clean = fresh_index()
        for position in range(2):
            clean.add_table(make_table(f"lake{position}", seed=20 + position), ["key"])
        clean.add_table(make_table("fresh", seed=77), ["key"])
        expected = dump(clean.query(make_query(base)))

        restarted = DiscoveryService(
            maintained_dir,
            ServiceConfig(
                execution="process",
                workers=1,
                cache_entries=0,
                shared_cache_entries=0,
            ),
        )
        try:
            maintainer = restarted.start_maintenance()
            # start() ran the recovery compaction synchronously: the killed
            # process's durable registration is already folded and published.
            assert restarted.published_generation() == 1
            job = maintainer.tracker.last("recovery-compaction")
            assert job.status == "completed"
            assert job.detail["deltas_folded"] == 1
            assert dump(restarted.query(make_query(base)).results) == expected
        finally:
            restarted.close()


class TestHTTPSurface:
    def test_healthz_and_metrics_report_maintenance(self, maintained_dir):
        service = DiscoveryService(maintained_dir, ServiceConfig(workers=2))
        maintainer = service.start_maintenance()
        assert maintainer is not None
        http_server = serve(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                http_server.url + "/healthz", timeout=30
            ) as response:
                health = json.load(response)
            assert health["status"] == "ok"
            assert health["generation"] == 1
            assert health["index_loaded"] is False  # still cheap, still lazy

            with urllib.request.urlopen(
                http_server.url + "/metrics", timeout=30
            ) as response:
                metrics = json.load(response)
            maintenance = metrics["service"]["maintenance"]
            assert maintenance["generation"] == 1
            assert maintenance["pending_deltas"] == 0
            assert maintenance["failed_compactions"] == 0
        finally:
            http_server.shutdown()
            http_server.server_close()
            service.close()
            thread.join(timeout=10)
