"""Shared fixtures for the maintenance tests: tiny lakes and maintained dirs.

Every helper is deterministic (seeded) so two independently constructed
copies of a table — or of a whole index — are byte-identical, which is what
the crash-recovery tests compare against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import SketchIndex, save_index
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.maintenance import WriteAheadLog
from repro.relational.table import Table

NUM_KEYS = 120
CAPACITY = 48
ENGINE_SEED = 11


def make_keys() -> list[str]:
    return [f"k{i:04d}" for i in range(NUM_KEYS)]


def make_table(name: str, seed: int) -> Table:
    """A deterministic candidate table sharing the lake's key universe."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "key": make_keys(),
            "value": rng.normal(size=NUM_KEYS).tolist(),
            "extra": rng.normal(size=NUM_KEYS).tolist(),
        },
        name=name,
    )


def make_base(seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {"key": make_keys(), "target": rng.normal(size=NUM_KEYS).tolist()},
        name="base",
    )


def make_query(base: Table, **overrides) -> AugmentationQuery:
    defaults = dict(
        table=base,
        key_column="key",
        target_column="target",
        top_k=50,
        min_containment=0.0,
        min_join_size=8,
    )
    defaults.update(overrides)
    return AugmentationQuery(**defaults)


def fresh_index() -> SketchIndex:
    return SketchIndex(SketchEngine(EngineConfig(capacity=CAPACITY, seed=ENGINE_SEED)))


def built_candidates(table: Table) -> list:
    """The table's fully-built candidates, as a clean engine would build them."""
    return fresh_index().engine.ingest_table(table, ["key"])


@pytest.fixture()
def maintained_dir(tmp_path):
    """A flat two-table index directory with an initialized (empty) WAL."""
    index = fresh_index()
    for position in range(2):
        index.add_table(make_table(f"lake{position}", seed=20 + position), ["key"])
    directory = tmp_path / "lake.index"
    save_index(index, directory)
    WriteAheadLog.attach(directory, create=True).close()
    return directory
