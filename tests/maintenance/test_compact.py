"""Compaction: atomic generation publishing, crash safety, the maintainer."""

from __future__ import annotations

import json
import time

import pytest

import repro.maintenance.compact as compact_module
from repro.discovery import load_index
from repro.discovery.persistence import (
    read_publication,
    resolve_index_root,
    save_index,
)
from repro.exceptions import MaintenanceError
from repro.maintenance import (
    Compactor,
    IndexMaintainer,
    WriteAheadLog,
    candidate_to_document,
    maintenance_summary,
)
from repro.store import load_npz
from tests.maintenance.conftest import built_candidates, fresh_index, make_table


def table_names(directory) -> set[str]:
    index = load_index(directory)
    return {candidate.profile.table_name for candidate in index.candidates}


def register_delta(wal: WriteAheadLog, table) -> int:
    documents = [candidate_to_document(c) for c in built_candidates(table)]
    return wal.append("register_table", table.name, documents)


class TestCompactor:
    def test_bootstrap_publishes_the_flat_layout(self, maintained_dir):
        detail = Compactor(maintained_dir).compact()
        assert detail["skipped"] is False
        assert detail["generation"] == 1
        assert detail["applied_sequence"] == 0
        assert detail["deltas_folded"] == 0
        publication = read_publication(maintained_dir)
        assert publication["generation"] == 1
        assert publication["name"] == "00000001"
        assert resolve_index_root(maintained_dir).name == "00000001"
        assert table_names(maintained_dir) == {"lake0", "lake1"}

    def test_fold_register_and_remove(self, maintained_dir):
        with WriteAheadLog.attach(maintained_dir) as wal:
            compactor = Compactor(maintained_dir, wal=wal)
            compactor.compact()  # bootstrap: generation 1
            register_delta(wal, make_table("lake9", seed=91))
            wal.append("remove_table", "lake0")

            detail = compactor.compact()
            assert detail["generation"] == 2
            assert detail["applied_sequence"] == 2
            assert detail["deltas_folded"] == 2
            assert table_names(maintained_dir) == {"lake1", "lake9"}
            assert wal.pending(2) == 0  # the folded segments were pruned

            # Nothing pending: the next pass is a no-op, not a new generation.
            assert compactor.compact()["skipped"] is True
            assert read_publication(maintained_dir)["generation"] == 2

    def test_replayed_log_matches_clean_build_byte_for_byte(self, tmp_path):
        """Crash recovery's core claim: base generation + logged deltas
        compacts to the exact index a never-crashed build would have written
        (the ``.npz`` container embeds zip timestamps, so the comparison is
        the parsed index document plus every stored array's bytes)."""
        tables = [make_table(f"lake{i}", seed=30 + i) for i in range(3)]

        clean = fresh_index()
        for table in tables:
            clean.add_table(table, ["key"])
        clean_dir = tmp_path / "clean.index"
        save_index(clean, clean_dir)

        maintained = tmp_path / "maintained.index"
        seeded = fresh_index()
        seeded.add_table(tables[0], ["key"])
        save_index(seeded, maintained)
        with WriteAheadLog.attach(maintained, create=True) as wal:
            for table in tables[1:]:
                register_delta(wal, table)
            Compactor(maintained, wal=wal).compact()

        generation_dir = resolve_index_root(maintained)
        clean_document = json.loads((clean_dir / "index.json").read_text())
        folded_document = json.loads((generation_dir / "index.json").read_text())
        assert folded_document == clean_document

        clean_store = load_npz(clean_dir / "sketches.npz")
        folded_store = load_npz(generation_dir / "sketches.npz")
        assert clean_store._manifest == folded_store._manifest
        assert set(clean_store._arrays) == set(folded_store._arrays)
        for name in clean_store._arrays:
            left, right = clean_store.array(name), folded_store.array(name)
            assert left.dtype == right.dtype, name
            assert left.tobytes() == right.tobytes(), name

    def test_failed_compaction_leaves_the_old_generation_serving(
        self, maintained_dir, monkeypatch
    ):
        with WriteAheadLog.attach(maintained_dir) as wal:
            compactor = Compactor(maintained_dir, wal=wal)
            compactor.compact()
            wal.append("remove_table", "lake0")

            def explode(*args, **kwargs):
                raise OSError("disk full")

            monkeypatch.setattr(compact_module, "save_index", explode)
            with pytest.raises(OSError, match="disk full"):
                compactor.compact()

            # The pointer never moved and the old generation still loads.
            assert read_publication(maintained_dir)["generation"] == 1
            assert table_names(maintained_dir) == {"lake0", "lake1"}
            # No half-written stage left behind to confuse anyone.
            assert not list((maintained_dir / "generations").glob(".incoming-*"))
            # The delta is still pending, so the retry folds it.
            assert wal.pending(0) == 1
            monkeypatch.undo()
            detail = compactor.compact()
            assert detail["generation"] == 2
            assert table_names(maintained_dir) == {"lake1"}

    def test_load_index_ignores_an_in_progress_stage(self, maintained_dir):
        """A snapshot (backup, crashed compactor) can contain a half-written
        ``.incoming`` tree; loading must resolve the published generation."""
        Compactor(maintained_dir).compact()
        stage = maintained_dir / "generations" / ".incoming-00000002"
        stage.mkdir()
        (stage / "index.json").write_text("{half written", encoding="utf-8")
        assert resolve_index_root(maintained_dir).name == "00000001"
        assert table_names(maintained_dir) == {"lake0", "lake1"}
        # The next compaction sweeps the stale stage and publishes over it.
        with WriteAheadLog.attach(maintained_dir) as wal:
            wal.append("remove_table", "lake0")
            Compactor(maintained_dir, wal=wal).compact()
        assert not stage.exists()
        assert table_names(maintained_dir) == {"lake1"}

    def test_only_recent_generations_are_retained(self, maintained_dir):
        with WriteAheadLog.attach(maintained_dir) as wal:
            compactor = Compactor(maintained_dir, wal=wal)
            for _ in range(3):
                compactor.compact(force=True)
        names = sorted(
            path.name for path in (maintained_dir / "generations").iterdir()
        )
        assert names == ["00000002", "00000003"]


class TestMaintainer:
    def test_start_recovers_pending_deltas_synchronously(self, maintained_dir):
        with WriteAheadLog.attach(maintained_dir) as wal:
            register_delta(wal, make_table("lake9", seed=91))
        maintainer = IndexMaintainer(maintained_dir)
        maintainer.start()
        try:
            # Recovery already ran by the time start() returned.
            publication = read_publication(maintained_dir)
            assert publication["generation"] == 1
            assert publication["applied_sequence"] == 1
            assert "lake9" in table_names(maintained_dir)
            job = maintainer.tracker.last("recovery-compaction")
            assert job.status == "completed"
            assert job.detail["deltas_folded"] == 1
        finally:
            maintainer.close()
            maintainer.wal.close()

    def test_background_compaction_folds_live_appends(self, maintained_dir):
        maintainer = IndexMaintainer(maintained_dir, interval=0.05)
        maintainer.start()  # bootstraps generation 1
        try:
            maintainer.wal.append("remove_table", "lake0")
            maintainer.notify()
            deadline = time.time() + 60.0
            while time.time() < deadline:
                publication = read_publication(maintained_dir)
                if publication and publication["applied_sequence"] >= 1:
                    break
                time.sleep(0.02)
            assert publication["generation"] == 2
            assert table_names(maintained_dir) == {"lake1"}
            stats = maintainer.stats()
            assert stats["pending_deltas"] == 0
            assert stats["compactions"] >= 1
            assert stats["failed_compactions"] == 0
        finally:
            maintainer.close()
            maintainer.wal.close()

    def test_failed_recovery_is_fatal_and_recorded(self, maintained_dir, monkeypatch):
        with WriteAheadLog.attach(maintained_dir) as wal:
            wal.append("remove_table", "lake0")

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(compact_module, "save_index", explode)
        maintainer = IndexMaintainer(maintained_dir)
        try:
            with pytest.raises(MaintenanceError, match="recovery compaction"):
                maintainer.start()
            job = maintainer.tracker.last("recovery-compaction")
            assert job.status == "failed"
            assert job.error == "OSError: disk full"
            assert "disk full" in job.traceback
        finally:
            maintainer.close()
            maintainer.wal.close()


class TestSummary:
    def test_plain_directory_reports_absence(self, tmp_path):
        assert maintenance_summary(tmp_path) == {"present": False}

    def test_maintained_directory_reports_state(self, maintained_dir):
        before = maintenance_summary(maintained_dir)
        assert before["present"] is True
        assert before["generation"] == 0  # nothing published yet
        assert before["last_job"] is None

        with WriteAheadLog.attach(maintained_dir) as wal:
            compactor = Compactor(maintained_dir, wal=wal)
            compactor.compact()
            wal.append("remove_table", "lake0")

            summary = maintenance_summary(maintained_dir)
        assert summary["generation"] == 1
        assert summary["applied_sequence"] == 0
        assert summary["pending_deltas"] == 1
        assert summary["wal"]["segments"] >= 1
        assert summary["wal"]["last_sequence"] == 1
        assert summary["wal"]["bytes"] > 0
        # The summary's readonly scan never moves the appender's state.
        with WriteAheadLog.attach(maintained_dir) as wal:
            assert wal.last_sequence == 1
