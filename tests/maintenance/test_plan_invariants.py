"""Planner stats invariant under live mutation + postings + generations.

The planner's accounting identity —

    total_candidates ==
        pruned_containment + pruned_join_floor + skipped_by_postings
        + survivors

— has per-feature tests (``tests/serving/test_planner.py``), but the three
features that each bend the candidate set (live ``register_table``
mutation, the posting-index skip path, and maintained-directory
generations across compaction and restart) had no combined test.  This
regression test drives one maintained service through all three at once
and asserts the identity on every served answer, plus that the service's
aggregated ``plan_*`` metrics equal the sum of the per-query stats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maintenance import Compactor, WriteAheadLog
from repro.serving import DiscoveryService, ServiceConfig
from repro.relational.table import Table
from tests.maintenance.conftest import (
    NUM_KEYS,
    make_base,
    make_keys,
    make_query,
    make_table,
)

pytestmark = pytest.mark.usefixtures("maintained_dir")


def make_partial_table(name: str, *, keep: int, seed: int) -> Table:
    """A candidate sharing only the first ``keep`` keys of the lake."""
    rng = np.random.default_rng(seed)
    keys = make_keys()[:keep]
    return Table.from_dict(
        {
            "key": keys,
            "value": rng.normal(size=keep).tolist(),
            "extra": rng.normal(size=keep).tolist(),
        },
        name=name,
    )


def make_disjoint_table(name: str, *, rows: int, seed: int) -> Table:
    """A candidate keyed entirely outside the lake's key universe."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "key": [f"alien{i:04d}" for i in range(rows)],
            "value": rng.normal(size=rows).tolist(),
            "extra": rng.normal(size=rows).tolist(),
        },
        name=name,
    )


def assert_accounted(plan_stats: dict) -> None:
    """The identity under test: every candidate counted exactly once."""
    assert plan_stats["total_candidates"] == (
        plan_stats["pruned_containment"]
        + plan_stats["pruned_join_floor"]
        + plan_stats["skipped_by_postings"]
        + plan_stats["survivors"]
    )


def test_invariant_under_mutation_postings_and_generations(maintained_dir):
    base = make_base()
    # min_containment > 0 turns the posting-probe path on; the join floor
    # stays above the sparse table's overlap so both prune counters can fire.
    probing = make_query(base, min_containment=0.6, min_join_size=8)
    permissive = make_query(base, min_containment=0.01, min_join_size=8)

    served: list[dict] = []

    def ask(service, query):
        result = service.query(query)
        assert_accounted(result.plan_stats)
        served.append(result.plan_stats)
        return result

    with DiscoveryService(maintained_dir, ServiceConfig(workers=2)) as service:
        # Round 1 — the persisted two-table lake, postings sidecar active.
        first = ask(service, probing)
        assert first.plan_stats["total_candidates"] == 4
        assert first.plan_stats["survivors"] == 4
        assert first.plan_stats["postings_probed"] > 0

        # Round 2 — live mutation: a full-overlap table, a half-overlap
        # table (containment 0.5 < 0.6), a 4-key table (overlap below the
        # join floor) and a fully disjoint table (invisible to the probe).
        service.register_table(make_table("fresh", seed=77), ["key"])
        service.register_table(
            make_partial_table("halfkeys", keep=NUM_KEYS // 2, seed=78), ["key"]
        )
        service.register_table(make_partial_table("sparse", keep=4, seed=79), ["key"])
        service.register_table(make_disjoint_table("alien", rows=30, seed=80), ["key"])

        second = ask(service, probing)
        stats = second.plan_stats
        assert stats["total_candidates"] == 12
        assert stats["survivors"] == 6  # lake0/lake1/fresh candidates
        assert stats["pruned_containment"] >= 2  # halfkeys (and maybe sparse)
        assert stats["skipped_by_postings"] == 2  # the alien candidates

        third = ask(service, permissive)
        # At containment 0.01 the half-overlap table survives; the 4-key
        # table passes containment but falls below the join-size floor.
        assert third.plan_stats["pruned_join_floor"] >= 2
        assert third.plan_stats["survivors"] >= 8

        # The aggregated /metrics counters are exactly the per-query sums.
        counters = service.stats()["counters"]
        for counter in (
            "total_candidates",
            "survivors",
            "pruned_containment",
            "pruned_join_floor",
            "skipped_by_postings",
        ):
            assert counters[f"plan_{counter}"] == sum(s[counter] for s in served)

        # Not via ask(): a repeat of `probing` is served from the result
        # cache, which (correctly) neither re-plans nor increments the
        # plan_* metrics — its plan_stats document is empty.
        repeat = service.query(probing)
        if repeat.plan_stats:
            assert_accounted(repeat.plan_stats)
        before_restart = [
            (r.candidate_id, r.mi_estimate) for r in repeat.results
        ]

    # Round 3 — maintenance: compact the WAL into a published generation,
    # then serve from the new generation (fresh postings sidecar included).
    with WriteAheadLog.attach(maintained_dir) as wal:
        detail = Compactor(maintained_dir, wal=wal).compact()
    assert detail["generation"] >= 1

    with DiscoveryService(maintained_dir, ServiceConfig(workers=2)) as reopened:
        fourth = ask(reopened, probing)
        stats = fourth.plan_stats
        assert_accounted(stats)
        assert stats["total_candidates"] == 12
        assert stats["skipped_by_postings"] == 2
        after_restart = [
            (r.candidate_id, r.mi_estimate) for r in fourth.results
        ]
    assert after_restart == before_restart
