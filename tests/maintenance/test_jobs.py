"""Persistent maintenance-job records: lifecycle, failure capture, listing."""

from __future__ import annotations

import json

from repro.maintenance import JobTracker
from repro.maintenance.jobs import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
)


class TestLifecycle:
    def test_queued_running_completed_persists(self, tmp_path):
        tracker = JobTracker.attach(tmp_path)
        record = tracker.create("compaction", {"requested_by": "test"})
        assert record.status == STATUS_QUEUED
        assert record.job_id == 1
        tracker.start(record)
        assert record.status == STATUS_RUNNING
        tracker.complete(record, {"generation": 2, "deltas_folded": 3})

        # A fresh attachment (another process) reads the same durable state.
        reloaded = JobTracker.attach(tmp_path).last()
        assert reloaded.job_id == 1
        assert reloaded.status == STATUS_COMPLETED
        assert reloaded.detail == {
            "requested_by": "test",
            "generation": 2,
            "deltas_folded": 3,
        }
        assert reloaded.finished_at >= reloaded.started_at >= reloaded.created_at

    def test_failure_captures_error_and_traceback(self, tmp_path):
        tracker = JobTracker.attach(tmp_path)
        record = tracker.start(tracker.create("compaction"))
        try:
            raise OSError("disk full")
        except OSError as exc:
            tracker.fail(record, exc)
        reloaded = JobTracker.attach(tmp_path).last()
        assert reloaded.status == STATUS_FAILED
        assert reloaded.error == "OSError: disk full"
        assert "OSError: disk full" in reloaded.traceback
        assert "Traceback" in reloaded.traceback

    def test_job_ids_are_monotonic_across_reattach(self, tmp_path):
        first = JobTracker.attach(tmp_path).create("compaction")
        second = JobTracker.attach(tmp_path).create("recovery-compaction")
        assert (first.job_id, second.job_id) == (1, 2)


class TestListing:
    def test_counts_and_last_by_kind(self, tmp_path):
        tracker = JobTracker.attach(tmp_path)
        recovery = tracker.start(tracker.create("recovery-compaction"))
        tracker.complete(recovery)
        failed = tracker.start(tracker.create("compaction"))
        tracker.fail(failed, ValueError("boom"))
        tracker.create("compaction")  # still queued

        counts = tracker.counts()
        assert counts == {
            "queued": 1,
            "running": 0,
            "completed": 1,
            "failed": 1,
            "total": 3,
        }
        assert tracker.last().job_id == 3
        assert tracker.last("recovery-compaction").job_id == 1
        assert tracker.last("nothing-of-the-kind") is None

    def test_unreadable_records_are_skipped(self, tmp_path):
        tracker = JobTracker.attach(tmp_path)
        tracker.create("compaction")
        tracker.create("compaction")
        path = tracker.directory / "job-00000001.json"
        path.write_text("{torn", encoding="utf-8")
        records = tracker.list()
        assert [record.job_id for record in records] == [2]
        # Valid records still round-trip through plain JSON.
        document = json.loads((tracker.directory / "job-00000002.json").read_text())
        assert document["kind"] == "compaction"
