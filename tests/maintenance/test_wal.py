"""Crash-recovery and durability tests of the write-ahead delta log.

The contract under test: every acknowledged append survives any later
crash; a torn or corrupt tail is truncated (never replayed) on the next
writer open; readonly opens never modify the log; and sequence numbers
never regress below already-pruned (compacted) history.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import warnings
import zlib
from pathlib import Path

import pytest

import repro
from repro.exceptions import WALError
from repro.maintenance import WriteAheadLog
from repro.maintenance.wal import _FRAME, _HEADER


def segment_paths(root) -> list[Path]:
    return sorted((Path(root) / "wal").glob("segment-*.wal"))


class TestRoundTrip:
    def test_append_replay_round_trip(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            first = wal.append("register_table", "lake0", [{"candidate_id": "lake0.v"}])
            second = wal.append("remove_table", "lake0")
            assert (first, second) == (1, 2)
        with WriteAheadLog.attach(tmp_path) as wal:
            records = list(wal.replay())
            assert wal.last_sequence == 2
        assert [record.sequence for record in records] == [1, 2]
        assert records[0].op == "register_table"
        assert records[0].name == "lake0"
        assert records[0].candidates == [{"candidate_id": "lake0.v"}]
        assert records[1].op == "remove_table"
        assert records[1].candidates == []

    def test_replay_after_skips_applied_records(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            for position in range(5):
                wal.append("remove_table", f"t{position}")
            assert [r.sequence for r in wal.replay(after=3)] == [4, 5]
            assert wal.pending(3) == 2
            assert wal.pending(5) == 0

    def test_bad_appends_refused(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            with pytest.raises(WALError, match="unknown delta operation"):
                wal.append("truncate_table", "t0")
            with pytest.raises(WALError, match="at least one candidate"):
                wal.append("register_table", "t0", [])

    def test_attach_requires_existing_log(self, tmp_path):
        with pytest.raises(WALError, match="repro index log"):
            WriteAheadLog.attach(tmp_path / "plain")
        assert WriteAheadLog.present(tmp_path / "plain") is False

    def test_stats_reports_segments_and_pending(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            for position in range(3):
                wal.append("remove_table", f"t{position}")
            stats = wal.stats(applied=1)
            assert stats["segments"] == 1
            assert stats["records"] == 3
            assert stats["last_sequence"] == 3
            assert stats["bytes"] > _HEADER.size


class TestRecovery:
    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            for position in range(3):
                wal.append("register_table", f"t{position}", [{"i": position}])
        [segment] = segment_paths(tmp_path)
        intact = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\x2a\x00\x00\x00\x99")  # half a frame: a torn append
        with pytest.warns(RuntimeWarning, match="torn or corrupt tail"):
            wal = WriteAheadLog.attach(tmp_path)
        try:
            assert [record.sequence for record in wal.replay()] == [1, 2, 3]
            assert segment.stat().st_size == intact
            assert wal.append("register_table", "t3", [{"i": 3}]) == 4
        finally:
            wal.close()

    def test_corrupt_record_truncates_from_the_damage_on(self, tmp_path):
        """A flipped bit before the tail drops that record and all later ones:
        a delta gap must never be replayed over."""
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            for position in range(3):
                wal.append("register_table", f"t{position}", [{"i": position}])
        [segment] = segment_paths(tmp_path)
        raw = bytearray(segment.read_bytes())
        # Walk to the second record's payload and flip one byte in it.
        offset = _HEADER.size
        length, _ = _FRAME.unpack_from(raw, offset)
        offset += _FRAME.size + length  # past record 1
        length, checksum = _FRAME.unpack_from(raw, offset)
        payload_at = offset + _FRAME.size
        raw[payload_at] ^= 0xFF
        assert zlib.crc32(bytes(raw[payload_at : payload_at + length])) != checksum
        segment.write_bytes(bytes(raw))

        with pytest.warns(RuntimeWarning, match="torn or corrupt tail"):
            wal = WriteAheadLog.attach(tmp_path)
        try:
            assert [record.sequence for record in wal.replay()] == [1]
            assert wal.last_sequence == 1
            assert wal.append("remove_table", "t9") == 2
        finally:
            wal.close()

    def test_prune_seals_a_sequence_floor(self, tmp_path):
        """Deleting fully-applied segments must never let a reopened log
        reuse already-compacted sequence numbers."""
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            for position in range(3):
                wal.append("remove_table", f"t{position}")
            assert wal.prune(3) == 1
            assert wal.last_sequence == 3
        with WriteAheadLog.attach(tmp_path) as wal:
            assert wal.last_sequence == 3
            assert list(wal.replay()) == []
            assert wal.append("remove_table", "t9") == 4

    def test_torn_only_record_keeps_the_pruned_floor(self, tmp_path):
        """A segment truncated down to its header still anchors the floor:
        the lost record's sequence may be reused, the pruned ones may not."""
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            wal.append("remove_table", "a")
            wal.append("remove_table", "b")
            wal.prune(2)
            assert wal.append("remove_table", "c") == 3
        [segment] = segment_paths(tmp_path)
        os.truncate(segment, segment.stat().st_size - 2)  # tear record 3
        with pytest.warns(RuntimeWarning, match="torn or corrupt tail"):
            wal = WriteAheadLog.attach(tmp_path)
        try:
            assert list(wal.replay()) == []
            assert wal.last_sequence == 2  # the pruned history's floor
            assert wal.append("remove_table", "c") == 3
        finally:
            wal.close()


class TestReadonly:
    def test_readonly_never_mutates_a_damaged_log(self, tmp_path):
        with WriteAheadLog.attach(tmp_path, create=True) as wal:
            wal.append("register_table", "t0", [{"i": 0}])
            wal.append("register_table", "t1", [{"i": 1}])
        [segment] = segment_paths(tmp_path)
        with open(segment, "ab") as handle:
            handle.write(b"\xff" * 7)  # an in-flight (torn) append
        before = segment.read_bytes()

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a readonly open must not warn
            wal = WriteAheadLog.attach(tmp_path, readonly=True)
        try:
            assert [record.sequence for record in wal.replay()] == [1, 2]
            assert segment.read_bytes() == before  # nothing truncated
            with pytest.raises(WALError, match="readonly"):
                wal.append("remove_table", "t0")
            with pytest.raises(WALError, match="readonly"):
                wal.prune(2)
        finally:
            wal.close()

        # The owning writer truncates the same damage on its next open.
        with pytest.warns(RuntimeWarning, match="torn or corrupt tail"):
            WriteAheadLog.attach(tmp_path).close()
        assert segment.read_bytes() == before[:-7]

    def test_readonly_create_is_contradictory(self, tmp_path):
        with pytest.raises(WALError, match="readonly"):
            WriteAheadLog.attach(tmp_path, create=True, readonly=True)


#: Appends deltas forever, acknowledging each durable append through a file;
#: the parent SIGKILLs it mid-run.  Everything acknowledged must replay.
_APPENDER = """
import sys
from repro.maintenance import WriteAheadLog

root, ack_path = sys.argv[1], sys.argv[2]
wal = WriteAheadLog.attach(root, create=True)
for sequence in range(1, 100_000):
    wal.append("register_table", f"table{sequence}", [{"sequence": sequence}])
    with open(ack_path, "w") as handle:
        handle.write(str(sequence))
"""


class TestKilledAppender:
    def test_sigkilled_appender_loses_nothing_acknowledged(self, tmp_path):
        ack = tmp_path / "ack"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _APPENDER, str(tmp_path), str(ack)], env=env
        )
        try:
            deadline = time.time() + 60.0
            acked = 0
            while time.time() < deadline:
                try:
                    acked = int(ack.read_text())
                except (OSError, ValueError):
                    acked = 0
                if acked >= 25:
                    break
                time.sleep(0.01)
        finally:
            child.kill()
            child.wait(timeout=60)
        assert acked >= 25, "the appender child never got going"

        with warnings.catch_warnings():
            # A torn tail is expected sometimes: the kill can land mid-write.
            warnings.simplefilter("ignore", RuntimeWarning)
            wal = WriteAheadLog.attach(tmp_path)
        try:
            records = list(wal.replay())
        finally:
            wal.close()
        sequences = [record.sequence for record in records]
        # A gap-free prefix covering at least every acknowledged append.
        assert sequences == list(range(1, len(sequences) + 1))
        assert len(sequences) >= acked
        for record in records:
            assert record.name == f"table{record.sequence}"
            assert record.candidates == [{"sequence": record.sequence}]
