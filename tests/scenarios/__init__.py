"""Tests for the scenario-suite accuracy harness."""
