"""Tests for the CI accuracy gate, including the gate-trip demonstration.

The acceptance rule this file pins down: a deliberately injected estimator
perturbation (a systematic bias added to every estimate via
:func:`~repro.scenarios.stats.perturb_records`) must trip the gate, while
an identical re-run — and one with only statistically insignificant
wiggle — must pass.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.scenarios.report import build_report, write_report
from repro.scenarios.runner import ScenarioSuiteResult, run_scenario_suite
from repro.scenarios.stats import perturb_records

GATE_PATH = Path(__file__).parent.parent.parent / "benchmarks" / "accuracy_gate.py"

spec = importlib.util.spec_from_file_location("accuracy_gate", GATE_PATH)
gate = importlib.util.module_from_spec(spec)
# Registered before exec: the script resolves its own module via sys.modules
# (and pulls in the sibling regression_gate the same way).
sys.modules["accuracy_gate"] = gate
spec.loader.exec_module(gate)


@pytest.fixture(scope="module")
def result() -> ScenarioSuiteResult:
    return run_scenario_suite(
        methods=["TUPSK", "CSK"],
        capacities=[64],
        families=["baseline", "key_skew", "low_containment"],
        replicates=2,
        sample_size=400,
        seed=0,
        ci_replicates=0,
    )


@pytest.fixture(scope="module")
def report(result):
    return build_report(result)


class TestCompare:
    def test_identical_reports_pass(self, report):
        failures, summary = gate.compare_accuracy(report, report)
        assert failures == []
        assert summary  # every gated metric shows up in the summary

    def test_injected_bias_trips_the_gate(self, result, report):
        """The acceptance-criteria demonstration: a biased estimator fails CI."""
        biased = ScenarioSuiteResult(
            records=perturb_records(result.records, 1.5),
            parameters=result.parameters,
            seconds=result.seconds,
            scenario_count=result.scenario_count,
        )
        failures, _ = gate.compare_accuracy(build_report(biased), report)
        assert failures
        assert any("rmse" in failure for failure in failures)

    def test_insignificant_wiggle_passes(self, report):
        """Beyond tolerance but within noise: the z-test keeps the gate green."""
        wiggled = copy.deepcopy(report)
        noisy_baseline = copy.deepcopy(report)
        for cell in wiggled["cells"].values():
            if cell["n_scored"] == 0:
                continue
            # A large SE makes any tolerance breach statistically invisible.
            cell["rmse"] = cell["rmse"] * 1.5 + 0.05
            cell["rmse_se"] = cell["bias_se"] = 10.0
        for cell in noisy_baseline["cells"].values():
            cell["rmse_se"] = cell["bias_se"] = 10.0
        failures, summary = gate.compare_accuracy(wiggled, noisy_baseline)
        assert failures == []
        assert any("noise" in line for line in summary)

    def test_run_id_mismatch_refuses_comparison(self, report):
        other = copy.deepcopy(report)
        other["run"]["run_id"] = "deadbeef0000"
        failures, _ = gate.compare_accuracy(other, report)
        assert len(failures) == 1
        assert "run_id mismatch" in failures[0]

    def test_missing_cell_fails(self, report):
        incomplete = copy.deepcopy(report)
        incomplete["cells"].pop(next(iter(incomplete["cells"])))
        failures, _ = gate.compare_accuracy(incomplete, report)
        assert any("missing from current report" in f for f in failures)

    def test_behavior_regression_is_hard_flag(self, report):
        broken = copy.deepcopy(report)
        key = next(iter(broken["cells"]))
        broken["cells"][key]["behavior_correct"] = (
            report["cells"][key]["behavior_correct"] * 0.5
        )
        failures, _ = gate.compare_accuracy(broken, report)
        assert any("behavior_correct" in f for f in failures)

    def test_ranking_drop_fails(self, report):
        worse = copy.deepcopy(report)
        for ranking in worse["ranking"].values():
            if ranking["spearman"] is not None:
                ranking["spearman"] -= 2 * gate.RANKING_DROP
        failures, _ = gate.compare_accuracy(worse, report)
        assert any("spearman" in f for f in failures)


class TestCli:
    def write_pair(self, tmp_path, report, current=None):
        results_dir = tmp_path / "results"
        baselines_dir = results_dir / "baselines"
        write_report(report, baselines_dir / gate.REPORT_NAME)
        write_report(current or report, results_dir / gate.REPORT_NAME)
        return results_dir

    def test_main_passes_on_identical(self, report, tmp_path, capsys):
        results_dir = self.write_pair(tmp_path, report)
        assert gate.main(["--results-dir", str(results_dir)]) == 0
        assert "all metrics within tolerance" in capsys.readouterr().out

    def test_main_fails_on_biased_report(self, result, report, tmp_path, capsys):
        biased = build_report(
            ScenarioSuiteResult(
                records=perturb_records(result.records, 1.5),
                parameters=result.parameters,
                scenario_count=result.scenario_count,
            )
        )
        results_dir = self.write_pair(tmp_path, report, current=biased)
        assert gate.main(["--results-dir", str(results_dir)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_main_fails_without_baseline(self, report, tmp_path, capsys):
        results_dir = tmp_path / "results"
        write_report(report, results_dir / gate.REPORT_NAME)
        assert gate.main(["--results-dir", str(results_dir)]) == 1
        assert "no committed baseline" in capsys.readouterr().err

    def test_update_baseline(self, report, tmp_path):
        results_dir = tmp_path / "results"
        write_report(report, results_dir / gate.REPORT_NAME)
        assert gate.main(["--results-dir", str(results_dir), "--update-baseline"]) == 0
        promoted = json.loads(
            (results_dir / "baselines" / gate.REPORT_NAME).read_text()
        )
        assert promoted["run"]["run_id"] == report["run"]["run_id"]

    def test_committed_baseline_matches_current_code(self):
        """The committed baseline must be reproducible by the committed code.

        Guards against a stale baseline after suite-configuration changes:
        the run_id derives from the generation parameters, so this fails
        whenever the default CI suite drifts without a baseline refresh.
        """
        baseline_path = (
            GATE_PATH.parent / "results" / "baselines" / gate.REPORT_NAME
        )
        baseline = json.loads(baseline_path.read_text())
        from repro.scenarios.report import run_id_for

        expected_parameters = baseline["parameters"]
        assert baseline["run"]["run_id"] == run_id_for(expected_parameters)
