"""Tests for the scenario-suite experiment runner."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import SyntheticDataError
from repro.scenarios.generators import generate_suite
from repro.scenarios.runner import ScenarioRecord, run_scenario_suite
from repro.sketches.base import available_methods


@pytest.fixture(scope="module")
def tiny_suite():
    return generate_suite(replicates=1, sample_size=300, random_state=0)


@pytest.fixture(scope="module")
def tiny_result(tiny_suite):
    return run_scenario_suite(
        methods=["TUPSK", "CSK"],
        capacities=[64],
        replicates=1,
        sample_size=300,
        seed=0,
        ci_replicates=4,
        scenarios=tiny_suite,
    )


class TestRunner:
    def test_grid_coverage(self, tiny_suite, tiny_result):
        assert len(tiny_result.records) == 2 * len(tiny_suite)
        assert {r.method for r in tiny_result.records} == {"TUPSK", "CSK"}
        assert {r.capacity for r in tiny_result.records} == {64}
        assert tiny_result.scenario_count == len(tiny_suite)

    def test_record_fields(self, tiny_result):
        for record in tiny_result.records:
            assert record.scenario.startswith(f"{record.family}/")
            assert math.isfinite(record.true_mi)
            if record.refused:
                assert record.estimate is None and record.error is None
            else:
                assert record.error == pytest.approx(
                    record.estimate - record.true_mi
                )
            if record.ci_covered is not None:
                assert record.ci_lower is not None and record.ci_upper is not None
                assert record.ci_covered == (
                    record.ci_lower <= record.true_mi <= record.ci_upper
                )

    def test_disjoint_scenarios_refuse(self, tiny_result):
        disjoint = [
            r for r in tiny_result.records if r.variant == "disjoint"
        ]
        assert disjoint
        assert all(r.expect_refusal and r.refused for r in disjoint)

    def test_deterministic(self, tiny_suite, tiny_result):
        again = run_scenario_suite(
            methods=["TUPSK", "CSK"],
            capacities=[64],
            replicates=1,
            sample_size=300,
            seed=0,
            ci_replicates=4,
            scenarios=tiny_suite,
        )
        assert [r.as_row() for r in again.records] == [
            {**r.as_row(), "seconds": a.seconds}
            for r, a in zip(tiny_result.records, again.records)
        ]

    def test_default_methods_are_all_registered(self):
        result = run_scenario_suite(
            capacities=[32],
            families=["baseline"],
            replicates=1,
            sample_size=300,
            seed=0,
            ci_replicates=0,
        )
        assert {r.method for r in result.records} == set(available_methods())

    def test_unknown_method_rejected(self):
        with pytest.raises(SyntheticDataError, match="unknown sketch method"):
            run_scenario_suite(methods=["NOPE"], capacities=[32], seed=0)

    def test_capacity_validation(self):
        with pytest.raises(SyntheticDataError, match="capacities"):
            run_scenario_suite(methods=["TUPSK"], capacities=[2], seed=0)
        with pytest.raises(SyntheticDataError, match="capacities"):
            run_scenario_suite(methods=["TUPSK"], capacities=[], seed=0)

    def test_progress_callback(self, tiny_suite):
        seen = []
        run_scenario_suite(
            methods=["TUPSK"],
            capacities=[64],
            ci_replicates=0,
            scenarios=tiny_suite[:2],
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_as_row_round_trips(self, tiny_result):
        record = tiny_result.records[0]
        assert ScenarioRecord(**record.as_row()) == record

    def test_parameters_recorded(self, tiny_result):
        params = tiny_result.parameters
        assert params["methods"] == ["TUPSK", "CSK"]
        assert params["capacities"] == [64]
        assert "baseline" in params["families"]
        assert tiny_result.methods() == ("TUPSK", "CSK")
        assert tiny_result.families()[0] == "baseline"
