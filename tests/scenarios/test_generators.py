"""Tests for the scenario generators: determinism and MI preservation.

Every perturbation is designed so the recoverable join keeps the
dataset's analytic MI; these tests pin the mechanical invariants behind
those arguments (bijective renames, unjoinable noise, iid subsampling,
value-independent duplication, numerically identical drift chunks).
"""

from __future__ import annotations

import math

import pytest

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import IngestError, SyntheticDataError
from repro.relational.dtypes import DType
from repro.scenarios.generators import (
    SCENARIO_FAMILIES,
    available_families,
    describe_families,
    dirty_candidate,
    drift_chunks,
    drop_candidate_keys,
    generate_family,
    generate_suite,
    skew_tables,
)
from repro.synthetic.benchmark import generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset("trinomial", 8, 400, random_state=7)


def scenario_names(scenarios):
    return [scenario.name for scenario in scenarios]


class TestSuiteGeneration:
    def test_all_families_present(self):
        suite = generate_suite(replicates=1, sample_size=200, random_state=0)
        assert {s.family for s in suite} == set(available_families())

    def test_deterministic_given_seed(self):
        first = generate_suite(replicates=2, sample_size=200, random_state=3)
        second = generate_suite(replicates=2, sample_size=200, random_state=3)
        assert scenario_names(first) == scenario_names(second)
        for a, b in zip(first, second):
            assert a.true_mi == b.true_mi
            assert a.dataset.cand_table.column("key").values == (
                b.dataset.cand_table.column("key").values
            )

    def test_family_subset_is_stable(self):
        """Restricting the run to a subset must not reshuffle a family's RNG."""
        full = generate_suite(replicates=1, sample_size=200, random_state=5)
        only = generate_suite(
            ["dirty_values"], replicates=1, sample_size=200, random_state=5
        )
        full_dirty = [s for s in full if s.family == "dirty_values"]
        assert scenario_names(only) == scenario_names(full_dirty)
        assert [s.true_mi for s in only] == [s.true_mi for s in full_dirty]

    def test_unknown_family_rejected(self):
        with pytest.raises(SyntheticDataError, match="unknown scenario family"):
            generate_suite(["no_such_family"], random_state=0)
        with pytest.raises(SyntheticDataError, match="unknown scenario family"):
            generate_family("no_such_family", random_state=0)

    def test_parameter_validation(self):
        with pytest.raises(SyntheticDataError, match="replicates"):
            generate_family("baseline", replicates=0, random_state=0)
        with pytest.raises(SyntheticDataError, match="sample_size"):
            generate_family("baseline", sample_size=10, random_state=0)

    def test_catalog_matches_registry(self):
        catalog = describe_families()
        assert set(catalog) == set(SCENARIO_FAMILIES)
        for family, spec in SCENARIO_FAMILIES.items():
            assert catalog[family]["variants"] == list(spec.variants)
            assert catalog[family]["description"]

    def test_variants_match_catalog(self):
        suite = generate_suite(replicates=1, sample_size=200, random_state=1)
        for scenario in suite:
            assert scenario.variant in SCENARIO_FAMILIES[scenario.family].variants


class TestSkew:
    def test_multiplicities_preserve_true_mi_and_keys(self, dataset):
        skewed = skew_tables(dataset, exponent=1.4, random_state=0)
        assert skewed.true_mi == dataset.true_mi
        # Duplication only: the distinct key sets are unchanged on both sides.
        for side in ("train_table", "cand_table"):
            original = set(getattr(dataset, side).column("key").values)
            perturbed = set(getattr(skewed, side).column("key").values)
            assert perturbed == original
        assert skewed.train_table.num_rows > dataset.train_table.num_rows

    def test_skew_is_heavy_hittered(self, dataset):
        skewed = skew_tables(
            dataset, exponent=1.4, max_multiplicity=24, random_state=0
        )
        keys = skewed.cand_table.column("key").values
        counts = sorted(
            (keys.count(key) for key in set(keys)), reverse=True
        )
        assert counts[0] >= 8 * counts[-1]


class TestDirty:
    def test_noise_rows_cannot_join(self, dataset):
        dirty = dirty_candidate(dataset, random_state=0)
        base_keys = set(dirty.train_table.column("key").values)
        cand_keys = dirty.cand_table.column("key").values
        joinable = [k for k in cand_keys if k in base_keys]
        # Injected NULL keys and shadow keys never appear in the base.
        assert None not in base_keys
        assert not any(k for k in joinable if str(k).startswith("shadow-"))
        assert any(k is None for k in cand_keys)
        assert any(str(k).startswith("shadow-") for k in cand_keys if k is not None)

    def test_unicode_rename_is_bijective(self, dataset):
        dirty = dirty_candidate(dataset, random_state=0)
        original = dataset.train_table.column("key").values
        renamed = dirty.train_table.column("key").values
        assert len(set(renamed)) == len(set(original))
        assert all("—" in key for key in renamed)

    def test_mixed_dtype_variant_is_categorical(self, dataset):
        dirty = dirty_candidate(dataset, stringify_features=True, random_state=0)
        assert dirty.cand_table.column("feature").dtype is DType.STRING

    def test_estimate_matches_clean_dataset(self, dataset):
        """The recoverable join is the clean one: estimates stay close."""
        engine = SketchEngine(EngineConfig(capacity=256, seed=0))
        dirty = dirty_candidate(dataset, random_state=0)

        def estimate(ds):
            base = engine.sketch_base(ds.train_table, "key", "target")
            cand = engine.sketch_candidate(ds.cand_table, "key", "feature")
            return engine.estimate(base, cand).mi

        assert estimate(dirty) == pytest.approx(estimate(dataset), abs=0.15)


class TestLowContainment:
    def test_keep_fraction_validation(self, dataset):
        with pytest.raises(SyntheticDataError, match="keep_fraction"):
            drop_candidate_keys(dataset, keep_fraction=1.5)

    def test_partial_overlap(self, dataset):
        reduced = drop_candidate_keys(dataset, keep_fraction=0.3, random_state=0)
        base_keys = set(dataset.cand_table.column("key").values)
        kept_keys = set(reduced.cand_table.column("key").values)
        assert kept_keys < base_keys
        ratio = len(kept_keys) / len(base_keys)
        assert 0.2 <= ratio <= 0.4
        assert reduced.true_mi == dataset.true_mi

    def test_disjoint_shares_no_keys(self, dataset):
        disjoint = drop_candidate_keys(dataset, keep_fraction=0.0, random_state=0)
        base_keys = set(disjoint.train_table.column("key").values)
        cand_keys = set(disjoint.cand_table.column("key").values)
        assert not base_keys & cand_keys

    def test_disjoint_scenarios_expect_refusal(self):
        suite = generate_family("low_containment", replicates=1, random_state=0)
        refusals = [s for s in suite if s.expect_refusal]
        assert [s.variant for s in refusals] == ["disjoint"]


class TestSchemaDrift:
    def test_chunks_recover_batch_content(self, dataset):
        chunks = drift_chunks(dataset, num_chunks=4, random_state=0)
        keys = [k for chunk in chunks for k in chunk.column("key").values]
        values = [v for chunk in chunks for v in chunk.column("feature").values]
        assert keys == dataset.cand_table.column("key").values
        batch_values = dataset.cand_table.column("feature").values
        assert all(
            float(got) == float(want) for got, want in zip(values, batch_values)
        )

    def test_late_null_chunks_add_unjoinable_rows(self, dataset):
        chunks = drift_chunks(dataset, late_nulls=True, random_state=0)
        assert None not in chunks[0].column("key").values
        assert None in chunks[-1].column("key").values

    def test_benign_drift_streams_to_same_estimate(self, dataset):
        engine = SketchEngine(EngineConfig(capacity=128, seed=0))
        base = engine.sketch_base(dataset.train_table, "key", "target")
        batch = engine.sketch_candidate(dataset.cand_table, "key", "feature")
        chunks = drift_chunks(dataset, num_chunks=4, random_state=0)
        streamed = engine.sketch_stream(
            iter(chunks), "key", "feature", side="candidate"
        )
        batch_mi = engine.estimate(base, batch).mi
        streamed_mi = engine.estimate(base, streamed).mi
        assert math.isfinite(streamed_mi)
        # int→float drift is numerically benign: the estimate barely moves.
        assert streamed_mi == pytest.approx(batch_mi, abs=0.2)

    def test_hostile_drift_is_rejected_by_ingest(self, dataset):
        engine = SketchEngine(EngineConfig(capacity=128, seed=0))
        chunks = drift_chunks(dataset, hostile=True, random_state=0)
        with pytest.raises(IngestError, match="drifted"):
            engine.sketch_stream(iter(chunks), "key", "feature", side="candidate")

    def test_too_few_chunks_rejected(self, dataset):
        with pytest.raises(SyntheticDataError, match="two chunks"):
            drift_chunks(dataset, num_chunks=1)


class TestKeyDependence:
    def test_paired_variants_share_ground_truth(self):
        suite = generate_family("key_dependence", replicates=2, random_state=0)
        by_replicate = {}
        for scenario in suite:
            by_replicate.setdefault(scenario.replicate, {})[scenario.variant] = scenario
        for pair in by_replicate.values():
            assert set(pair) == {"keyind", "keydep"}
            assert pair["keyind"].true_mi == pair["keydep"].true_mi
