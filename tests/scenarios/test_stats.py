"""Tests for the statistical aggregation layer (cells, win matrix)."""

from __future__ import annotations

import math

import pytest

from repro.scenarios.runner import ScenarioRecord
from repro.scenarios.stats import (
    perturb_records,
    summarize_records,
    top_k_overlap,
    win_matrix,
)


def make_record(
    *,
    family="baseline",
    method="TUPSK",
    capacity=64,
    replicate=0,
    true_mi=1.0,
    estimate=1.0,
    refused=False,
    expect_refusal=False,
    ci=None,
):
    return ScenarioRecord(
        family=family,
        scenario=f"{family}/v#{replicate}",
        variant="v",
        replicate=replicate,
        method=method,
        capacity=capacity,
        true_mi=true_mi,
        expect_refusal=expect_refusal,
        refused=refused,
        estimate=None if refused else estimate,
        error=None if refused else estimate - true_mi,
        join_size=0 if refused else 50,
        ci_lower=None if ci is None else ci[0],
        ci_upper=None if ci is None else ci[1],
        ci_covered=None if ci is None else ci[0] <= true_mi <= ci[1],
    )


class TestCells:
    def test_known_bias_and_rmse(self):
        records = [
            make_record(replicate=i, true_mi=1.0, estimate=1.0 + e)
            for i, e in enumerate((0.1, -0.1, 0.3, -0.3))
        ]
        summary = summarize_records(records)
        cell = summary["cells"]["baseline|TUPSK|64"]
        assert cell["n"] == 4 and cell["n_scored"] == 4
        assert cell["bias"] == pytest.approx(0.0)
        assert cell["mae"] == pytest.approx(0.2)
        assert cell["rmse"] == pytest.approx(math.sqrt(0.05))
        assert cell["bias_se"] == pytest.approx(cell["error_std"] / 2.0)
        assert cell["rmse_se"] > 0.0

    def test_refusals_and_behavior(self):
        records = [
            make_record(replicate=0),
            make_record(replicate=1, refused=True),
            make_record(replicate=2, refused=True, expect_refusal=True),
        ]
        cell = summarize_records(records)["cells"]["baseline|TUPSK|64"]
        assert cell["refusal_rate"] == pytest.approx(2 / 3)
        # Unexpected refusal counts against behavior; the expected one does not.
        assert cell["behavior_correct"] == pytest.approx(2 / 3)

    def test_ci_coverage(self):
        records = [
            make_record(replicate=0, ci=(0.8, 1.2)),
            make_record(replicate=1, ci=(1.5, 2.0)),
            make_record(replicate=2),
        ]
        cell = summarize_records(records)["cells"]["baseline|TUPSK|64"]
        assert cell["ci_count"] == 2
        assert cell["ci_coverage"] == pytest.approx(0.5)

    def test_expected_refusals_not_scored(self):
        records = [
            make_record(replicate=0, estimate=5.0, expect_refusal=True),
            make_record(replicate=1, estimate=1.0),
        ]
        cell = summarize_records(records)["cells"]["baseline|TUPSK|64"]
        # The wrongly-produced estimate hurts behavior, not the error stats.
        assert cell["n_scored"] == 1
        assert cell["rmse"] == pytest.approx(0.0)
        assert cell["behavior_correct"] == pytest.approx(0.5)


class TestRanking:
    def test_top_k_overlap(self):
        assert top_k_overlap([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], k=1) == 1.0
        assert top_k_overlap([3.0, 2.0, 1.0], [1.0, 2.0, 3.0], k=1) == 0.0
        assert top_k_overlap([], []) == 1.0
        with pytest.raises(ValueError):
            top_k_overlap([1.0], [1.0, 2.0])

    def test_ranking_needs_three_scored(self):
        records = [make_record(replicate=i) for i in range(2)]
        ranking = summarize_records(records)["ranking"]["TUPSK|64"]
        assert ranking["spearman"] is None

    def test_perfect_ranking(self):
        records = [
            make_record(replicate=i, true_mi=float(i), estimate=float(i) + 0.1)
            for i in range(6)
        ]
        ranking = summarize_records(records)["ranking"]["TUPSK|64"]
        assert ranking["spearman"] == pytest.approx(1.0)
        assert ranking["top_k_overlap"] == pytest.approx(1.0)
        assert ranking["n_ranked"] == 6


class TestWinMatrix:
    def test_lowest_rmse_wins(self):
        records = [
            make_record(method="TUPSK", replicate=i, estimate=1.0 + 0.05 * i)
            for i in range(3)
        ] + [
            make_record(method="CSK", replicate=i, estimate=1.0 + 0.5 * i)
            for i in range(3)
        ]
        matrix = win_matrix(summarize_records(records)["cells"])
        assert matrix["wins"] == {"TUPSK": 1}
        assert matrix["by_group"] == {"baseline|64": "TUPSK"}

    def test_ties_break_by_method_name(self):
        records = [
            make_record(method=m, replicate=i, estimate=1.1)
            for m in ("TUPSK", "CSK")
            for i in range(2)
        ]
        matrix = win_matrix(summarize_records(records)["cells"])
        assert matrix["by_group"] == {"baseline|64": "CSK"}

    def test_unscored_cells_do_not_win(self):
        records = [
            make_record(method="TUPSK", replicate=0, refused=True),
            make_record(method="CSK", replicate=0, estimate=2.0),
        ]
        matrix = win_matrix(summarize_records(records)["cells"])
        assert matrix["wins"] == {"CSK": 1}


class TestPerturb:
    def test_shifts_estimates_only(self):
        records = [make_record(replicate=0), make_record(replicate=1, refused=True)]
        shifted = perturb_records(records, 0.5)
        assert shifted[0].estimate == pytest.approx(1.5)
        assert shifted[0].error == pytest.approx(0.5)
        assert shifted[1].estimate is None
        # Originals untouched.
        assert records[0].estimate == pytest.approx(1.0)
