"""Tests for the report layer: JSON documents, markdown, run tracking."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.report import (
    append_run_log,
    build_report,
    load_report,
    render_markdown,
    run_id_for,
    write_report,
)
from repro.scenarios.runner import run_scenario_suite


@pytest.fixture(scope="module")
def result():
    return run_scenario_suite(
        methods=["TUPSK", "LV2SK"],
        capacities=[64],
        families=["baseline", "low_containment"],
        replicates=1,
        sample_size=300,
        seed=0,
        ci_replicates=4,
    )


@pytest.fixture(scope="module")
def report(result):
    return build_report(result)


class TestDocument:
    def test_structure(self, report, result):
        assert report["report"] == "scenario_accuracy"
        assert report["format_version"] == 1
        assert report["run"]["records"] == len(result.records)
        assert report["run"]["scenarios"] == result.scenario_count
        assert set(report["catalog"]) == {"baseline", "low_containment"}
        assert report["cells"] and report["ranking"] and report["win_matrix"]

    def test_cell_keys_cover_grid(self, report):
        families = {key.split("|")[0] for key in report["cells"]}
        methods = {key.split("|")[1] for key in report["cells"]}
        assert families == {"baseline", "low_containment"}
        assert methods == {"TUPSK", "LV2SK"}

    def test_json_serializable(self, report):
        json.dumps(report)

    def test_overall_summary(self, report):
        overall = report["overall"]
        assert overall["cell_count"] == len(report["cells"])
        assert overall["mean_rmse"] >= 0.0
        assert 0.0 <= overall["behavior_correct"] <= 1.0


class TestRunId:
    def test_stable_for_same_parameters(self, result):
        assert run_id_for(result.parameters) == run_id_for(dict(result.parameters))

    def test_sensitive_to_any_parameter(self, result):
        baseline = run_id_for(result.parameters)
        for key, value in {
            "seed": 1,
            "sample_size": 999,
            "capacities": [128],
            "methods": ["CSK"],
        }.items():
            assert run_id_for({**result.parameters, key: value}) != baseline

    def test_report_carries_it(self, report, result):
        assert report["run"]["run_id"] == run_id_for(result.parameters)


class TestMarkdown:
    def test_sections_present(self, report):
        text = render_markdown(report)
        for heading in (
            "# Scenario-suite accuracy report",
            "## Overall",
            "## Win matrix",
            "## Ranking quality",
            "## Cells",
            "## Scenario catalog",
        ):
            assert heading in text

    def test_tables_are_well_formed(self, report):
        """Every row of a pipe table has the header's column count."""
        text = render_markdown(report)
        width = None
        for line in text.splitlines():
            if line.startswith("|"):
                if width is None:
                    width = line.count("|")
                assert line.count("|") == width
            else:
                width = None


class TestFiles:
    def test_write_and_load_round_trip(self, report, tmp_path):
        json_path = tmp_path / "out" / "scenario_accuracy.json"
        md_path = tmp_path / "out" / "scenario_accuracy.md"
        written = write_report(report, json_path, md_path)
        assert written == json_path
        assert load_report(json_path) == json.loads(json.dumps(report))
        assert md_path.read_text().startswith("# Scenario-suite accuracy report")

    def test_run_log_appends(self, report, tmp_path):
        log_path = tmp_path / "runs.jsonl"
        append_run_log(report, log_path)
        append_run_log(report, log_path)
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["run_id"] == report["run"]["run_id"]
        assert lines[0]["mean_rmse"] == report["overall"]["mean_rmse"]
