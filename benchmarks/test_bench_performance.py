"""Benchmark E8 — Section V-D: runtime of sketch-based vs full-join estimation.

Paper reference values (n=256): as N grows from 5k to 20k, the full-join time
grows from 0.35ms to 2.1ms and full-data MI estimation from 2.2ms to 10.7ms,
while the sketch join stays under 0.2ms and sketch MI estimation around 0.1ms.
Absolute numbers differ in pure Python; the trend (full-join cost grows with
N, sketch cost stays flat and is orders of magnitude smaller) is what this
benchmark checks.
"""

from repro.evaluation.experiments import run_performance


def test_bench_performance(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_performance(
            table_sizes=(5_000, 10_000, 20_000),
            sketch_size=256,
            repetitions=3,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(
        "performance",
        result.report(
            columns=[
                "table_rows",
                "full_join_ms",
                "full_mi_ms",
                "sketch_join_ms",
                "sketch_mi_ms",
                "speedup_join",
                "speedup_mi",
            ]
        ),
    )

    rows = {row["table_rows"]: row for row in result.summary}
    assert rows[20_000]["full_join_ms"] > rows[5_000]["full_join_ms"]
    for size, row in rows.items():
        assert row["sketch_join_ms"] < row["full_join_ms"], size
        assert row["sketch_mi_ms"] < row["full_mi_ms"], size
    # Sketch-side costs do not grow with the table size (within noise).
    assert rows[20_000]["sketch_mi_ms"] < 5.0 * max(rows[5_000]["sketch_mi_ms"], 0.01)
