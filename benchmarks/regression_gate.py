#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares the JSON reports produced by the benchmark harness (under
``benchmarks/results/``) against committed baselines (under
``benchmarks/results/baselines/``) and exits non-zero when a gated metric
regresses beyond its tolerance.  Stdlib-only so CI can run it before any
project dependency is importable.

Gated metrics are chosen to be robust on shared CI runners: the primary
gates are *ratio* metrics (parallel speedup over the serial path measured
in the same process on the same machine), which cancel out runner speed;
absolute throughputs are gated too, but with a loose tolerance that only
catches order-of-magnitude regressions.

Usage::

    python benchmarks/regression_gate.py                  # compare
    python benchmarks/regression_gate.py --update-baselines  # refresh

Exit codes: 0 all gated metrics within tolerance, 1 regression or missing
report/baseline/metric, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Slowdown fraction tolerated by default (the CI gate's ">25%" rule).
DEFAULT_TOLERANCE = 0.25

#: Loose tolerance for absolute throughput metrics, which vary with runner
#: hardware; this only catches catastrophic (4x-plus) regressions.
THROUGHPUT_TOLERANCE = 0.75


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric of one benchmark report."""

    key: str  # dotted path into the report JSON, e.g. "sharded.seconds"
    direction: str = "higher"  # "higher" or "lower" is better
    tolerance: float = DEFAULT_TOLERANCE

    def check(self, current: float, baseline: float) -> Optional[str]:
        """A failure message when ``current`` regresses past the tolerance."""
        if baseline <= 0:
            return None  # degenerate baseline: nothing meaningful to gate
        if self.direction == "higher":
            floor = baseline * (1.0 - self.tolerance)
            if current < floor:
                return (
                    f"{self.key}: {current:.4g} fell below {floor:.4g} "
                    f"(baseline {baseline:.4g}, tolerance {self.tolerance:.0%})"
                )
        else:
            ceiling = baseline * (1.0 + self.tolerance)
            if current > ceiling:
                return (
                    f"{self.key}: {current:.4g} exceeded {ceiling:.4g} "
                    f"(baseline {baseline:.4g}, tolerance {self.tolerance:.0%})"
                )
        return None


#: Reports and metrics the gate enforces.
GATED_REPORTS: dict[str, tuple[MetricSpec, ...]] = {
    "engine_batch.json": (
        MetricSpec("speedup", "higher"),
        MetricSpec("sequential.pairs_per_second", "higher", THROUGHPUT_TOLERANCE),
        MetricSpec("concurrent.pairs_per_second", "higher", THROUGHPUT_TOLERANCE),
    ),
    "index_build.json": (
        MetricSpec("speedup", "higher"),
        MetricSpec("sharded.columns_per_second", "higher", THROUGHPUT_TOLERANCE),
    ),
    "hashing.json": (
        # Primary gate: the vectorized-over-scalar construction speedup, a
        # same-process ratio that cancels out runner speed.
        MetricSpec("speedup", "higher"),
        MetricSpec("vectorized.columns_per_second", "higher", THROUGHPUT_TOLERANCE),
    ),
    "serving.json": (
        # Both primary gates are ratios (cache speedup over the cold path,
        # collapsed fraction of duplicate queries) and so robust to runner
        # speed; the absolute throughput only catches catastrophic drops.
        MetricSpec("cached_speedup", "higher", THROUGHPUT_TOLERANCE),
        MetricSpec("coalescing.collapsed_fraction", "higher"),
        MetricSpec("throughput.qps", "higher", THROUGHPUT_TOLERANCE),
    ),
    "postings.json": (
        # The touched fraction and touched growth are deterministic lake
        # properties (seeded synthetic lake), so any drift is a real change
        # in candidate generation; the plan speedup is a same-process ratio
        # gated loosely against scheduler noise.
        MetricSpec("touched_fraction", "lower"),
        MetricSpec("touched_growth", "lower"),
        MetricSpec("plan_speedup", "higher", THROUGHPUT_TOLERANCE),
    ),
    "ingest.json": (
        # Primary gates are same-process ratios: chunked-ingest throughput
        # relative to the batch build, and peak chunked-ingest memory
        # relative to materialize-then-build (lower is better).
        MetricSpec("throughput_ratio", "higher"),
        MetricSpec("memory.peak_fraction", "lower"),
        MetricSpec("ingest.columns_per_second", "higher", THROUGHPUT_TOLERANCE),
    ),
    "maintenance.json": (
        # Hard flags (zero tolerance): generation reloads must never fail a
        # query, and the generation count (bootstrap + one per registration)
        # is deterministic — any drift is a real behavior change.  The
        # latency ratio (churn p50 over quiet p50) is a same-process ratio
        # robust to runner speed, gated loosely against scheduler noise.
        MetricSpec("success_fraction", "higher", 0.0),
        MetricSpec("generations_published", "higher", 0.0),
        MetricSpec("reload_p50_ratio", "lower", THROUGHPUT_TOLERANCE),
    ),
    "mp_serving.json": (
        # Primary gate: process-over-thread qps, a same-machine ratio that
        # cancels out runner speed.  The 2.0 baseline with the default 25%
        # tolerance puts the gate floor at exactly the benchmark's own 1.5x
        # assertion.  identical_results is a hard flag (zero tolerance):
        # process-mode answers must stay byte-identical to the thread path.
        MetricSpec("scaling_ratio", "higher"),
        MetricSpec("identical_results", "higher", 0.0),
        MetricSpec("process.qps", "higher", THROUGHPUT_TOLERANCE),
    ),
}


def extract_metric(document: dict, dotted_key: str) -> float:
    """Resolve a dotted key (``"sharded.seconds"``) inside a report."""
    node = document
    for part in dotted_key.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted_key)
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise KeyError(dotted_key)
    return float(node)


def load_report(path: Path) -> dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"could not read benchmark report {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ValueError(f"benchmark report {path} is not a JSON object")
    return document


def compare_report(
    report_name: str, results_dir: Path, baselines_dir: Path
) -> tuple[list[str], list[str]]:
    """Gate one report; returns (failure lines, summary lines)."""
    failures: list[str] = []
    summary: list[str] = []
    result_path = results_dir / report_name
    baseline_path = baselines_dir / report_name
    if not result_path.exists():
        return [f"{report_name}: no benchmark result at {result_path}"], summary
    if not baseline_path.exists():
        return [f"{report_name}: no committed baseline at {baseline_path}"], summary
    try:
        result = load_report(result_path)
        baseline = load_report(baseline_path)
    except ValueError as exc:
        return [str(exc)], summary
    for spec in GATED_REPORTS[report_name]:
        try:
            current_value = extract_metric(result, spec.key)
        except KeyError:
            failures.append(f"{report_name}: result is missing metric {spec.key!r}")
            continue
        try:
            baseline_value = extract_metric(baseline, spec.key)
        except KeyError:
            failures.append(f"{report_name}: baseline is missing metric {spec.key!r}")
            continue
        message = spec.check(current_value, baseline_value)
        status = "REGRESSION" if message else "ok"
        summary.append(
            f"{report_name} :: {spec.key}: {current_value:.4g} "
            f"(baseline {baseline_value:.4g}, tolerance {spec.tolerance:.0%}) {status}"
        )
        if message:
            failures.append(f"{report_name}: {message}")
    return failures, summary


def update_baselines(results_dir: Path, baselines_dir: Path) -> int:
    baselines_dir.mkdir(parents=True, exist_ok=True)
    missing = 0
    for report_name in GATED_REPORTS:
        source = results_dir / report_name
        if not source.exists():
            print(f"no result to promote for {report_name}", file=sys.stderr)
            missing += 1
            continue
        shutil.copyfile(source, baselines_dir / report_name)
        print(f"baseline updated: {baselines_dir / report_name}")
    return 1 if missing else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=Path(__file__).parent / "results",
        type=Path,
        help="directory holding fresh benchmark JSON reports",
    )
    parser.add_argument(
        "--baselines-dir",
        default=None,
        type=Path,
        help="directory holding committed baselines (default: <results>/baselines)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy current results over the baselines instead of comparing",
    )
    args = parser.parse_args(argv)
    results_dir = args.results_dir
    baselines_dir = (
        args.baselines_dir if args.baselines_dir is not None else results_dir / "baselines"
    )

    if args.update_baselines:
        return update_baselines(results_dir, baselines_dir)

    all_failures: list[str] = []
    all_summary: list[str] = []
    for report_name in GATED_REPORTS:
        failures, summary = compare_report(report_name, results_dir, baselines_dir)
        all_failures.extend(failures)
        all_summary.extend(summary)

    for line in all_summary:
        print(line)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as handle:
            handle.write("## Benchmark regression gate\n\n```\n")
            handle.write("\n".join(all_summary + all_failures) + "\n```\n")
    if all_failures:
        print()
        for line in all_failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print("benchmark gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
