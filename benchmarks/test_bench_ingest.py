"""Benchmark — chunked streaming ingest vs the batch index build.

The streaming ingestion subsystem promises two things on the 500-column
synthetic lake (25 tables x 20 value columns, the ``test_bench_index_build``
fixture scale):

* **throughput** — building the index through ``add_table_stream`` (chunked,
  one pass, vectorized hashing per chunk) stays within 1.5x of the batch
  ``add_table`` build's wall time, while producing identical candidates;
* **bounded memory** — ingesting one long table from a lazy chunk generator
  holds peak memory at a small fraction of the materialize-then-build path
  (``O(chunk + sketches)`` instead of ``O(rows)``), measured with
  ``tracemalloc``.

The JSON report feeds the CI benchmark-regression gate
(``benchmarks/regression_gate.py``): the primary gate is the
throughput *ratio* (same-process, cancels runner speed), the absolute
ingest throughput only catches catastrophic drops, and the memory
fraction guards the bounded-memory claim.
"""

from __future__ import annotations

import json
import time
import tracemalloc

import numpy as np

from repro.discovery.builder import IndexBuilder
from repro.engine import EngineConfig
from repro.ingest import InMemoryReader, TableIngestor
from repro.relational.table import Table

NUM_TABLES = 25
COLUMNS_PER_TABLE = 20
ROWS_PER_TABLE = 400
NUM_KEYS = 300
CAPACITY = 128
CHUNK_ROWS = 200
MAX_SLOWDOWN = 1.5

BIG_ROWS = 60_000
BIG_CHUNK = 1_000
MAX_PEAK_FRACTION = 0.5

CONFIG = EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0)


def build_lake(seed: int = 11):
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    target = rng.normal(size=NUM_KEYS)
    tables = []
    for position in range(NUM_TABLES):
        row_keys = [keys[i] for i in rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)]
        data: dict = {"key": row_keys}
        for column in range(COLUMNS_PER_TABLE):
            mix = rng.uniform(0.0, 1.0)
            signal = np.array([target[int(key[1:])] for key in row_keys])
            data[f"v{column:02d}"] = (
                (1.0 - mix) * signal + mix * rng.normal(size=ROWS_PER_TABLE)
            ).tolist()
        tables.append(Table.from_dict(data, name=f"lake{position:03d}"))
    return tables


def big_table_chunks(seed: int = 99):
    """Lazy chunk stream of one long (never materialized) two-column table."""
    rng = np.random.default_rng(seed)
    for start in range(0, BIG_ROWS, BIG_CHUNK):
        count = min(BIG_CHUNK, BIG_ROWS - start)
        yield Table.from_dict(
            {
                "key": [f"k{int(i):05d}" for i in rng.integers(0, NUM_KEYS, size=count)],
                "value": rng.normal(size=count).tolist(),
            },
            name="big",
        )


def materialized_big_table(seed: int = 99):
    chunks = list(big_table_chunks(seed))
    data: dict = {"key": [], "value": []}
    for chunk in chunks:
        data["key"].extend(chunk.column("key").values)
        data["value"].extend(chunk.column("value").values)
    return Table.from_dict(data, name="big")


def measure_peak(operation) -> tuple[float, object]:
    tracemalloc.start()
    try:
        result = operation()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20, result


def test_bench_ingest(benchmark, results_dir):
    tables = build_lake()
    total_columns = NUM_TABLES * COLUMNS_PER_TABLE

    def batch_build():
        builder = IndexBuilder(CONFIG, max_workers=0)
        for table in tables:
            builder.add_table(table, ["key"])
        return builder.build()

    def chunked_ingest():
        builder = IndexBuilder(CONFIG, max_workers=0)
        for table in tables:
            builder.add_table_stream(
                InMemoryReader(table, chunk_size=CHUNK_ROWS), ["key"]
            )
        return builder.build()

    def best_of(operation, rounds=3):
        result, best = None, float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            result = operation()
            best = min(best, time.perf_counter() - start)
        return result, best

    # One untimed warm-up of each arm, then best-of-3: the gated metric is
    # the same-process *ratio*, so both arms get identical treatment and
    # one slow outlier round (cold caches, CI noise) cannot skew it.
    batch_build()
    chunked_ingest()
    batch_index, batch_seconds = best_of(batch_build)

    def timed_ingest():
        return best_of(chunked_ingest)

    ingest_index, ingest_seconds = benchmark.pedantic(
        timed_ingest, rounds=1, iterations=1
    )

    # Chunked ingest must be a pure re-plumbing: same candidates, same
    # sketches, same order.
    assert len(batch_index) == len(ingest_index) == total_columns
    assert [candidate.candidate_id for candidate in ingest_index.candidates] == [
        candidate.candidate_id for candidate in batch_index.candidates
    ]
    for mine, reference in zip(ingest_index.candidates, batch_index.candidates):
        assert mine.sketch == reference.sketch
        assert mine.profile == reference.profile
        assert mine.key_kmv.hashes == reference.key_kmv.hashes

    throughput_ratio = batch_seconds / ingest_seconds

    # Memory bound: one long table, lazily generated chunks vs materialize-
    # then-build.  Peaks include the respective table construction cost —
    # that is the end-to-end claim.
    def ingest_big():
        ingestor = TableIngestor(CONFIG, ["key"], name="big")
        ingestor.extend(big_table_chunks())
        return ingestor.finalize()

    def batch_big():
        table = materialized_big_table()
        builder = IndexBuilder(CONFIG, max_workers=0)
        builder.add_table(table, ["key"])
        return builder.build()

    chunked_peak_mb, chunked_candidates = measure_peak(ingest_big)
    materialized_peak_mb, materialized_index = measure_peak(batch_big)
    (reference_candidate,) = materialized_index.candidates
    (chunked_candidate,) = chunked_candidates
    assert chunked_candidate.sketch == reference_candidate.sketch
    assert chunked_candidate.profile == reference_candidate.profile
    peak_fraction = chunked_peak_mb / materialized_peak_mb

    report = {
        "benchmark": "ingest",
        "columns": total_columns,
        "tables": NUM_TABLES,
        "rows_per_table": ROWS_PER_TABLE,
        "capacity": CAPACITY,
        "chunk_rows": CHUNK_ROWS,
        "batch": {
            "seconds": batch_seconds,
            "columns_per_second": total_columns / batch_seconds,
        },
        "ingest": {
            "seconds": ingest_seconds,
            "columns_per_second": total_columns / ingest_seconds,
        },
        "throughput_ratio": throughput_ratio,
        "memory": {
            "big_table_rows": BIG_ROWS,
            "big_chunk_rows": BIG_CHUNK,
            "chunked_peak_mb": chunked_peak_mb,
            "materialized_peak_mb": materialized_peak_mb,
            "peak_fraction": peak_fraction,
        },
        "identical_candidates": True,
    }
    path = results_dir / "ingest.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert throughput_ratio >= 1.0 / MAX_SLOWDOWN, (
        f"chunked ingest is {1.0 / throughput_ratio:.2f}x slower than the "
        f"batch build (allowed: {MAX_SLOWDOWN}x)"
    )
    assert peak_fraction <= MAX_PEAK_FRACTION, (
        f"chunked ingest peaked at {chunked_peak_mb:.1f} MiB — "
        f"{peak_fraction:.0%} of the materialized build's "
        f"{materialized_peak_mb:.1f} MiB (allowed: {MAX_PEAK_FRACTION:.0%})"
    )


# ---------------------------------------------------------------------------
# Parquet vs CSV file ingest (gated on the optional pyarrow dependency).
# ---------------------------------------------------------------------------

#: Parquet ingest must at least match CSV throughput: CSV pays a whole-file
#: inference pass plus text parsing, Parquet reads dtypes from the footer
#: and decodes binary columns.
MIN_PARQUET_SPEEDUP = 1.0


def test_bench_parquet_vs_csv_ingest(benchmark, results_dir, tmp_path):
    """File-source arms of the same build: Parquet must not trail CSV.

    Both arms resolve through ``open_source`` and build the same index from
    the same logical rows, so the ratio isolates the per-format read path
    (schema resolution + value decoding).  The persisted stores must stay
    byte-identical — format choice is not allowed to leak into artifacts.
    """
    import pytest

    pa = pytest.importorskip("pyarrow")
    pq = pytest.importorskip("pyarrow.parquet")

    from repro.discovery.persistence import save_index
    from repro.ingest.sources import open_source
    from repro.relational.csvio import write_csv
    from repro.store import load_npz

    tables = build_lake()
    csv_paths, parquet_paths = [], []
    for table in tables:
        csv_path = tmp_path / f"{table.name}.csv"
        write_csv(table, csv_path)
        csv_paths.append(csv_path)
        parquet_path = tmp_path / f"{table.name}.parquet"
        pq.write_table(
            pa.table(
                {
                    column.name: pa.array(
                        column.values,
                        type=pa.string() if column.name == "key" else pa.float64(),
                    )
                    for column in table.columns
                }
            ),
            parquet_path,
            row_group_size=CHUNK_ROWS,
        )
        parquet_paths.append(parquet_path)

    def build_from(paths):
        builder = IndexBuilder(CONFIG, max_workers=0)
        for path in paths:
            builder.add_table_stream(
                open_source(path, chunk_size=CHUNK_ROWS), ["key"]
            )
        return builder.build()

    def best_of(operation, rounds=3):
        result, best = None, float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            result = operation()
            best = min(best, time.perf_counter() - start)
        return result, best

    build_from(csv_paths)
    build_from(parquet_paths)
    csv_index, csv_seconds = best_of(lambda: build_from(csv_paths))

    def timed_parquet():
        return best_of(lambda: build_from(parquet_paths))

    parquet_index, parquet_seconds = benchmark.pedantic(
        timed_parquet, rounds=1, iterations=1
    )

    csv_dir, parquet_dir = tmp_path / "csv.index", tmp_path / "parquet.index"
    save_index(csv_index, csv_dir)
    save_index(parquet_index, parquet_dir)
    assert (csv_dir / "index.json").read_text() == (
        parquet_dir / "index.json"
    ).read_text()
    csv_store = load_npz(csv_dir / "sketches.npz")
    parquet_store = load_npz(parquet_dir / "sketches.npz")
    assert csv_store._manifest == parquet_store._manifest
    byte_identical = True
    for name in csv_store._arrays:
        assert csv_store.array(name).tobytes() == parquet_store.array(name).tobytes(), name

    speedup = csv_seconds / parquet_seconds
    total_columns = NUM_TABLES * COLUMNS_PER_TABLE
    report = {
        "benchmark": "parquet_vs_csv_ingest",
        "columns": total_columns,
        "tables": NUM_TABLES,
        "rows_per_table": ROWS_PER_TABLE,
        "chunk_rows": CHUNK_ROWS,
        "csv": {
            "seconds": csv_seconds,
            "columns_per_second": total_columns / csv_seconds,
        },
        "parquet": {
            "seconds": parquet_seconds,
            "columns_per_second": total_columns / parquet_seconds,
        },
        "parquet_speedup": speedup,
        "byte_identical_store": byte_identical,
    }
    path = results_dir / "parquet_ingest.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert speedup >= MIN_PARQUET_SPEEDUP, (
        f"Parquet ingest is {1.0 / speedup:.2f}x slower than CSV "
        f"(required: at least {MIN_PARQUET_SPEEDUP}x CSV throughput)"
    )
