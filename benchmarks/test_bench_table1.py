"""Benchmark E5 — Table I: baseline comparison on synthetic data, n=256.

Paper values (n=256): INDSK recovers ~40-50% of n join samples and has the
largest MSE; the coordinated methods recover 60-100%; TUPSK recovers exactly
n samples and attains the lowest MSE on both CDUnif and Trinomial.
"""

from repro.evaluation.experiments import run_table1


def test_bench_table1(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table1(
            sketch_size=256,
            sample_size=10_000,
            datasets_per_distribution=6,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(
        "table1",
        result.report(columns=["dataset", "sketch", "avg_sketch_join_size", "join_pct_of_n", "mse"]),
    )

    by_key = {(row["dataset"], row["sketch"]): row for row in result.summary}
    for dataset in ("CDUnif", "Trinomial"):
        tupsk = by_key[(dataset, "TUPSK")]
        lv2sk = by_key[(dataset, "LV2SK")]
        indsk = by_key[(dataset, "INDSK")]
        # TUPSK recovers (nearly) n join samples and the lowest MSE of all
        # methods.  (The paper reports exactly n; datasets whose key domain is
        # larger than n can shave a few samples off — see EXPERIMENTS.md.)
        assert tupsk["join_pct_of_n"] > 90.0
        assert tupsk["mse"] <= lv2sk["mse"] + 1e-9
        assert tupsk["mse"] <= indsk["mse"] + 1e-9
        # The uncoordinated baseline recovers notably fewer join samples.
        assert indsk["avg_sketch_join_size"] < tupsk["avg_sketch_join_size"]
