"""Benchmark E9 (ablation) — value of sample coordination.

Isolates the design choice at the heart of Section IV: no coordination
(INDSK), key-level coordination (CSK, LV2SK) and tuple-level coordination
(TUPSK) on identical datasets, under independent and dependent join keys.
"""

from repro.evaluation.experiments import run_ablation_coordination


def test_bench_ablation_coordination(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_ablation_coordination(
            m=64,
            sketch_size=256,
            sample_size=10_000,
            datasets_per_key_generation=5,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_coordination", result.report())

    keyind = {row["method"]: row for row in result.summary_by(key_generation="KeyInd")}
    keydep = {row["method"]: row for row in result.summary_by(key_generation="KeyDep")}
    # Without coordination the recovered join is drastically smaller under KeyInd.
    assert keyind["INDSK"]["avg_join_size"] < 0.5 * keyind["TUPSK"]["avg_join_size"]
    # Under KeyDep, TUPSK is at least as accurate as the key-level methods.
    assert keydep["TUPSK"]["mse"] <= keydep["CSK"]["mse"] + 1e-9
