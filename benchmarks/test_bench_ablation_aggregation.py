"""Benchmark E10 (ablation) — choice of the featurization (aggregation) function.

Section III-B: the featurization function shapes the derived feature's
distribution and therefore its MI with the target.  In the weather-like
scenario the per-key average drives the target, so AVG preserves the signal
and COUNT destroys it.
"""

from repro.evaluation.experiments import run_ablation_aggregation


def test_bench_ablation_aggregation(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_ablation_aggregation(
            aggregates=("avg", "max", "mode", "count"),
            num_keys=600,
            readings_per_key=8,
            sketch_size=256,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_aggregation", result.report())

    by_agg = {row["aggregate"]: row for row in result.summary}
    assert by_agg["AVG"]["full_join_mi"] > by_agg["COUNT"]["full_join_mi"]
    assert by_agg["AVG"]["sketch_mi"] > by_agg["COUNT"]["sketch_mi"]
    assert by_agg["COUNT"]["full_join_mi"] < 0.2
