"""Benchmark — the concurrent discovery query service under closed-loop load.

The serving layer's whole point is making `AugmentationQuery` throughput and
latency first-class concerns, so this benchmark measures them directly over
a 100-candidate synthetic lake served from a persisted (memory-mapped)
index:

* **byte-identity** — results served over HTTP are byte-identical (same
  IDs, scores, order, JSON serialization) to the in-process
  ``SketchIndex.query`` path;
* **cold vs cached** — p50/p99 latency of first-time queries vs repeats of
  the same queries (the LRU+TTL cache must make repeats >= 5x faster at the
  median);
* **coalescing** — N identical queries fired concurrently must collapse
  into one computation (>= 90% of the duplicates must not recompute);
* **throughput** — a closed loop of client threads over a warm query pool.

The JSON report feeds the CI benchmark-regression gate.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.request

import numpy as np

from repro.discovery import SketchIndex, save_index
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.relational.table import Table
from repro.serving import DiscoveryService, ServiceConfig, result_to_dict, serve

NUM_TABLES = 10
COLUMNS_PER_TABLE = 10
ROWS_PER_TABLE = 300
NUM_KEYS = 300
CAPACITY = 64
NUM_COLD_QUERIES = 20
COALESCE_CLIENTS = 12
LOAD_CLIENTS = 8
QUERIES_PER_CLIENT = 25
MIN_CACHED_SPEEDUP = 5.0
MIN_COLLAPSED_FRACTION = 0.9


def build_lake(seed: int = 23):
    """A base table with many target columns plus NUM_TABLES candidates."""
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    signal = rng.normal(size=NUM_KEYS)
    base_columns: dict = {"key": keys}
    # One target column per cold query, plus one reserved for the
    # coalescing phase (it must be fresh when that phase runs).
    for position in range(NUM_COLD_QUERIES + 1):
        mix = rng.uniform(0.2, 0.8)
        base_columns[f"t{position:02d}"] = (
            (1.0 - mix) * signal + mix * rng.normal(size=NUM_KEYS)
        ).tolist()
    base = Table.from_dict(base_columns, name="base")
    tables = []
    for position in range(NUM_TABLES):
        row_keys = [keys[i] for i in rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)]
        data: dict = {"key": row_keys}
        aligned = np.array([signal[int(key[1:])] for key in row_keys])
        for column in range(COLUMNS_PER_TABLE):
            mix = rng.uniform(0.0, 1.0)
            data[f"v{column:02d}"] = (
                (1.0 - mix) * aligned + mix * rng.normal(size=ROWS_PER_TABLE)
            ).tolist()
        tables.append(Table.from_dict(data, name=f"lake{position:03d}"))
    return base, tables


def make_query(base, target):
    return AugmentationQuery(
        table=base,
        key_column="key",
        target_column=target,
        top_k=10,
        min_containment=0.0,
        min_join_size=8,
    )


def percentile(latencies, q):
    ordered = sorted(latencies)
    rank = max(math.ceil(q * len(ordered)), 1) - 1
    return ordered[min(rank, len(ordered) - 1)]


def check_http_identity(service, index, base):
    """Served top-k answers must serialize byte-identically to in-process."""
    server = serve(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        for target in ("t00", "t07"):
            query = make_query(base, target)
            body = json.dumps(
                {
                    "table": {"name": "base", "columns": base.to_dict()},
                    "key_column": "key",
                    "target_column": target,
                    "top_k": query.top_k,
                    "min_containment": query.min_containment,
                    "min_join_size": query.min_join_size,
                }
            ).encode("utf-8")
            request = urllib.request.Request(
                server.url + "/query", data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                served = json.load(response)["results"]
            in_process = [result_to_dict(result) for result in index.query(query)]
            assert json.dumps(served, sort_keys=True) == json.dumps(
                in_process, sort_keys=True
            ), f"served results for {target} differ from the in-process query path"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_bench_serving(benchmark, results_dir, tmp_path):
    config = EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0)
    base, tables = build_lake()

    index = SketchIndex(SketchEngine(config))
    for table in tables:
        index.add_table(table, ["key"])
    index_dir = tmp_path / "lake.index"
    save_index(index, index_dir)

    service = DiscoveryService(
        index_dir,
        ServiceConfig(workers=4, cache_entries=512, cache_ttl_seconds=None),
    )
    targets = [f"t{position:02d}" for position in range(NUM_COLD_QUERIES)]

    # -- byte-identity over HTTP (also warms t00/t07) -------------------- #
    check_http_identity(service, index, base)
    service.cache.invalidate()

    # -- cold vs cached latency ------------------------------------------ #
    cold_latencies = []
    for target in targets:
        started = time.perf_counter()
        served = service.query(make_query(base, target))
        cold_latencies.append(time.perf_counter() - started)
        assert not served.cache_hit
    cached_latencies = []
    for target in targets:
        started = time.perf_counter()
        served = service.query(make_query(base, target))
        cached_latencies.append(time.perf_counter() - started)
        assert served.cache_hit
    cold_p50 = percentile(cold_latencies, 0.50)
    cached_p50 = percentile(cached_latencies, 0.50)
    cached_speedup = cold_p50 / cached_p50

    # -- coalescing of identical concurrent queries ---------------------- #
    computed_before = service.metrics.counter("computed")
    barrier = threading.Barrier(COALESCE_CLIENTS)
    coalesce_query = make_query(base, f"t{NUM_COLD_QUERIES:02d}")  # fresh target
    errors = []

    def duplicate_client():
        try:
            barrier.wait()
            service.query(coalesce_query)
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    clients = [
        threading.Thread(target=duplicate_client) for _ in range(COALESCE_CLIENTS)
    ]
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    assert not errors, errors
    computations = service.metrics.counter("computed") - computed_before
    duplicates = COALESCE_CLIENTS - 1
    collapsed_fraction = (COALESCE_CLIENTS - computations) / duplicates

    # -- closed-loop throughput over the warm pool ----------------------- #
    def closed_loop():
        load_latencies = []
        lock = threading.Lock()

        def client(position):
            local = []
            for i in range(QUERIES_PER_CLIENT):
                target = targets[(position + i) % len(targets)]
                started = time.perf_counter()
                service.query(make_query(base, target))
                local.append(time.perf_counter() - started)
            with lock:
                load_latencies.extend(local)

        threads = [
            threading.Thread(target=client, args=(position,))
            for position in range(LOAD_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        return load_latencies, elapsed

    (load_latencies, load_elapsed) = benchmark.pedantic(
        closed_loop, rounds=1, iterations=1
    )
    total_queries = LOAD_CLIENTS * QUERIES_PER_CLIENT
    stats = service.stats()
    service.close()

    report = {
        "benchmark": "serving",
        "candidates": NUM_TABLES * COLUMNS_PER_TABLE,
        "capacity": CAPACITY,
        "workers": 4,
        "cold": {
            "queries": len(cold_latencies),
            "p50_seconds": cold_p50,
            "p99_seconds": percentile(cold_latencies, 0.99),
        },
        "cached": {
            "queries": len(cached_latencies),
            "p50_seconds": cached_p50,
            "p99_seconds": percentile(cached_latencies, 0.99),
        },
        "cached_speedup": cached_speedup,
        "coalescing": {
            "clients": COALESCE_CLIENTS,
            "computations": computations,
            "collapsed_fraction": collapsed_fraction,
        },
        "throughput": {
            "clients": LOAD_CLIENTS,
            "queries": total_queries,
            "seconds": load_elapsed,
            "qps": total_queries / load_elapsed,
            "p50_seconds": percentile(load_latencies, 0.50),
            "p99_seconds": percentile(load_latencies, 0.99),
        },
        "cache": stats["cache"],
        "identical_http_results": True,
    }
    path = results_dir / "serving.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert cached_speedup >= MIN_CACHED_SPEEDUP, (
        f"cached p50 is only {cached_speedup:.1f}x faster than cold "
        f"(required: {MIN_CACHED_SPEEDUP}x)"
    )
    assert collapsed_fraction >= MIN_COLLAPSED_FRACTION, (
        f"only {collapsed_fraction:.0%} of duplicate concurrent queries were "
        f"collapsed (required: {MIN_COLLAPSED_FRACTION:.0%})"
    )
