"""Benchmark E6 — Table II: real-data collections (simulated), n=1024.

Paper shape: on both collections TUPSK attains the strongest Spearman
correlation with the full-join estimates and the lowest MSE, despite its
sketch-join size being no larger than the two-level baselines'.

The collections are the simulated ``nyc`` and ``wbf`` repositories (see the
substitution note in DESIGN.md).
"""

from repro.evaluation.experiments import run_table2


def test_bench_table2(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table2(
            profiles=("nyc", "wbf"),
            sketch_size=1024,
            num_pairs=40,
            tables_per_repository=40,
            min_join_size=100,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(
        "table2",
        result.report(columns=["dataset", "sketch", "pairs", "avg_join_size", "spearman", "mse"]),
    )

    for collection in ("NYC", "WBF"):
        rows = {row["sketch"]: row for row in result.summary if row["dataset"] == collection}
        if not rows:
            continue
        assert rows["TUPSK"]["spearman"] >= rows["LV2SK"]["spearman"] - 0.05
        assert rows["TUPSK"]["mse"] <= rows["LV2SK"]["mse"] + 0.05
