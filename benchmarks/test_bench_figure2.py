"""Benchmark E2 — Figure 2: sketch estimates vs true MI, Trinomial m=512, n=256.

Paper shape: estimates are biased at n = 256; LV2SK's bias grows under KeyDep
(join-key/target dependence) while TUPSK behaves the same under both key
generations.
"""

from repro.evaluation.experiments import run_figure2


def test_bench_figure2(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_figure2(
            m=512,
            sketch_size=256,
            sample_size=10_000,
            datasets_per_key_generation=6,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("figure2", result.report())

    def mse(method, keygen):
        rows = result.summary_by(method=method, estimator="MLE", key_generation=keygen)
        return rows[0]["mse"]

    # TUPSK is (at least) as robust to the key distribution as LV2SK.
    lv2sk_gap = abs(mse("LV2SK", "KeyDep") - mse("LV2SK", "KeyInd"))
    tupsk_gap = abs(mse("TUPSK", "KeyDep") - mse("TUPSK", "KeyInd"))
    assert tupsk_gap <= lv2sk_gap + 0.1
