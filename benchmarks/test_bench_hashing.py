"""Benchmark — scalar vs vectorized hashing and sketch construction.

Every sketch is built by hashing join-key values through MurmurHash3 +
Fibonacci hashing.  The scalar reference implementation hashes one value at
a time in pure Python; the vectorized fast path
(``EngineConfig.vectorized``, the default) encodes a whole column, packs the
encodings into NumPy matrices and runs the hash rounds as array arithmetic.

This benchmark builds every sketch of a 500-column lake fixture (25 tables
x 20 value columns, as in the index-build benchmark, at 1000 rows per table
so per-column construction cost is realistic; string join keys) through
both paths:

* per table, the KMV key sketch over the join-key column, and
* per value column, one candidate-side sketch and one base-side sketch.

It asserts every sketch is identical between the two paths (the fast path
is a pure speedup) and that the vectorized path is at least ``MIN_SPEEDUP``
times faster.  The JSON report feeds the CI benchmark-regression gate.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.engine import EngineConfig, SketchEngine
from repro.relational.table import Table
from repro.sketches.kmv import KMVSketch

NUM_TABLES = 25
COLUMNS_PER_TABLE = 20
ROWS_PER_TABLE = 1000
NUM_KEYS = 700
CAPACITY = 128
MIN_SPEEDUP = 5.0


def build_lake(seed: int = 11):
    """The 500-column lake fixture (same shape as the index-build benchmark)."""
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    tables = []
    for position in range(NUM_TABLES):
        row_keys = [keys[i] for i in rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)]
        data: dict = {"key": row_keys}
        for column in range(COLUMNS_PER_TABLE):
            data[f"v{column:02d}"] = rng.normal(size=ROWS_PER_TABLE).tolist()
        tables.append(Table.from_dict(data, name=f"lake{position:03d}"))
    return tables


def construct_sketches(tables, *, vectorized: bool):
    """Build every lake sketch through one path; returns (sketches, seconds)."""
    engine = SketchEngine(
        EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0, vectorized=vectorized),
        cache_size=0,
    )
    sketches = []
    start = time.perf_counter()
    for table in tables:
        sketches.append(
            KMVSketch.from_values(
                table.column("key").non_null_values(),
                capacity=CAPACITY,
                seed=0,
                vectorized=vectorized,
            ).hashes
        )
        for column in range(COLUMNS_PER_TABLE):
            name = f"v{column:02d}"
            sketches.append(engine.sketch_candidate(table, "key", name))
            sketches.append(engine.sketch_base(table, "key", name, use_cache=False))
    return sketches, time.perf_counter() - start


def test_bench_hashing(benchmark, results_dir):
    tables = build_lake()
    total_columns = NUM_TABLES * COLUMNS_PER_TABLE

    scalar_sketches, scalar_seconds = construct_sketches(tables, vectorized=False)

    def vectorized_build():
        return construct_sketches(tables, vectorized=True)

    vectorized_sketches, vectorized_seconds = benchmark.pedantic(
        vectorized_build, rounds=1, iterations=1
    )

    # The fast path must be a pure speedup: every KMV hash list and every
    # base/candidate sketch identical, tuple for tuple.
    assert len(scalar_sketches) == len(vectorized_sketches)
    for scalar_sketch, vectorized_sketch in zip(scalar_sketches, vectorized_sketches):
        assert scalar_sketch == vectorized_sketch

    speedup = scalar_seconds / vectorized_seconds
    report = {
        "benchmark": "hashing",
        "columns": total_columns,
        "tables": NUM_TABLES,
        "rows_per_table": ROWS_PER_TABLE,
        "capacity": CAPACITY,
        "sketches_built": len(scalar_sketches),
        "scalar": {
            "seconds": scalar_seconds,
            "columns_per_second": total_columns / scalar_seconds,
        },
        "vectorized": {
            "seconds": vectorized_seconds,
            "columns_per_second": total_columns / vectorized_seconds,
        },
        "speedup": speedup,
    }
    path = results_dir / "hashing.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized sketch construction is only {speedup:.2f}x faster than "
        f"the scalar path (required: {MIN_SPEEDUP}x)"
    )
