"""Benchmark E11 (ablation) — estimation error vs sketch size.

Regenerates the error-vs-budget trade-off behind the paper's accuracy
discussion (Section IV-B): the RMSE of TUPSK-based MI estimates shrinks at a
near square-root rate as the single sketch parameter n grows.
"""

from repro.evaluation.experiments import run_ablation_sketch_size


def test_bench_ablation_sketch_size(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_ablation_sketch_size(
            sketch_sizes=(64, 128, 256, 512, 1024),
            m=64,
            sample_size=10_000,
            num_datasets=6,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_sketch_size", result.report())

    rmse_by_size = {row["sketch_size"]: row["rmse"] for row in result.summary}
    sizes = sorted(rmse_by_size)
    # Error shrinks as the sketch grows (allowing small non-monotonic noise
    # between adjacent sizes, but the end-to-end reduction must be large).
    assert rmse_by_size[sizes[-1]] < rmse_by_size[sizes[0]]
    assert rmse_by_size[sizes[-1]] < 0.6 * rmse_by_size[sizes[0]]
