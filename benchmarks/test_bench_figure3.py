"""Benchmark E3 — Figure 3: effect of distinct values, CDUnif, n=256.

Paper shape: estimators track the true MI at low m but break down as the true
MI approaches ~4.85 (m close to the sketch size); with LV2SK the DC-KSG
estimator collapses even earlier (~4.25); TUPSK degrades more gracefully.
"""

from repro.evaluation.experiments import run_figure3


def test_bench_figure3(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_figure3(
            sketch_size=256,
            sample_size=10_000,
            num_datasets=14,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("figure3", result.report())

    low_rows = [row for row in result.summary if row["mi_bucket"] == "[0.00,3.00)"]
    high_rows = [row for row in result.summary if row["mi_bucket"] == ">=5.00"]
    assert low_rows and high_rows
    # Estimates collapse (strong negative bias) once the MI exceeds ~5 nats.
    assert min(row["bias"] for row in high_rows) < -1.0
    # In the low-MI regime the estimates remain in the right ballpark.
    assert all(abs(row["bias"]) < 1.0 for row in low_rows)
