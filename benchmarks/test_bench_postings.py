"""Benchmark — posting-list candidate generation over a 100k-column lake.

The posting index exists so candidate generation stops paying a containment
evaluation per indexed column.  This benchmark builds synthetic lakes of
20k and 100k candidate columns (KMV key sketches injected directly, so the
lake fits in memory and builds in seconds), of which only a fixed few
hundred share any retained key with the base table, and measures:

* **touched fraction** — with the posting probe, the fraction of candidates
  that still reach a containment evaluation must be <= 10% on the 100k lake
  (the selective-query acceptance bar; in practice it is far lower);
* **sublinearity** — the touched count is governed by the matching set, not
  the lake: growing the lake 5x must not grow the touched count with it;
* **byte-identity** — planning through the probe returns exactly the full
  scan's results (same IDs, scores, order);
* **plan speedup** — wall-clock of the probed plan vs the full scan on the
  same lake in the same process (a runner-speed-independent ratio).

The JSON report feeds the CI benchmark-regression gate.
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np

from repro.discovery import SketchIndex
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.postings import PostingsIndex
from repro.relational.table import Table
from repro.serving.planner import QueryPlanner
from repro.sketches.kmv import KMVSketch

CAPACITY = 64
NUM_KEYS = 300
#: Candidates sharing retained keys with the base — fixed across lake sizes.
NUM_MATCHING = 200
#: Retained units per synthetic noise candidate.
NOISE_UNITS = 8
SMALL_LAKE = 20_000
LARGE_LAKE = 100_000
MAX_TOUCHED_FRACTION = 0.10
MIN_PLAN_SPEEDUP = 2.0
#: Touched count may not grow with the lake (5x more noise, same matches).
MAX_TOUCHED_GROWTH = 1.5


def synthetic_kmv(units, capacity=CAPACITY, seed=0):
    """A KMV sketch retaining exactly ``units`` (already-hashed keys).

    Injects the retained state directly instead of hashing values, which is
    what makes a 100k-column lake buildable in-process: the planner only
    reads the retained unit hashes, never the original values.
    """
    sketch = KMVSketch(capacity=capacity, seed=seed)
    sketch._entries = {float(unit): f"v{i}" for i, unit in enumerate(units)}
    if len(sketch._entries) == capacity:
        sketch._threshold = max(sketch._entries)
    return sketch


def build_lake(engine, base, template, num_candidates, rng):
    """``num_candidates`` synthetic candidates, NUM_MATCHING sharing keys
    with the base table, the rest retaining random units disjoint from it
    (random floats never collide with real key hashes)."""
    base_units = np.asarray(engine.key_sketch(base, "key").hashes)
    candidates = []
    for position in range(num_candidates):
        if position < NUM_MATCHING:
            size = int(rng.integers(4, len(base_units) + 1))
            units = rng.choice(base_units, size=size, replace=False)
        else:
            units = rng.random(NOISE_UNITS)
        candidates.append(
            dataclasses.replace(
                template,
                candidate_id=f"syn{position:06d}",
                key_kmv=synthetic_kmv(units),
            )
        )
    return candidates


def result_bytes(results):
    return [
        (r.candidate_id, r.mi_estimate, r.sketch_join_size, r.containment)
        for r in results
    ]


def plan_lake(planner, candidates, query, postings=None):
    started = time.perf_counter()
    plan = planner.plan(candidates, query, postings=postings)
    return plan, time.perf_counter() - started


def test_bench_postings(benchmark, results_dir):
    engine = SketchEngine(EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0))
    rng = np.random.default_rng(17)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    base = Table.from_dict(
        {"key": keys, "target": rng.normal(size=NUM_KEYS).tolist()}, name="base"
    )
    # One real candidate provides the MI sketch and profile every synthetic
    # candidate shares; only the key KMV (all the planner's probe and
    # containment filter ever read) differs per candidate.
    seed_index = SketchIndex(engine)
    seed_index.add_table(
        Table.from_dict(
            {"key": keys[:150], "value": rng.normal(size=150).tolist()},
            name="template",
        ),
        ["key"],
    )
    template = seed_index.candidates[0]
    query = AugmentationQuery(
        table=base,
        key_column="key",
        target_column="target",
        top_k=0,
        min_containment=0.05,
        min_join_size=8,
    )
    planner = QueryPlanner(engine)

    lakes = {}
    for label, num_candidates in (("small", SMALL_LAKE), ("large", LARGE_LAKE)):
        candidates = build_lake(engine, base, template, num_candidates, rng)
        built_started = time.perf_counter()
        postings = PostingsIndex.from_entries(
            (candidate.candidate_id, candidate.key_kmv.hashes)
            for candidate in candidates
        )
        build_seconds = time.perf_counter() - built_started

        scan_plan, scan_seconds = plan_lake(planner, candidates, query)
        if label == "large":
            probe_plan, probe_seconds = benchmark.pedantic(
                plan_lake,
                args=(planner, candidates, query, postings),
                rounds=1,
                iterations=1,
            )
        else:
            probe_plan, probe_seconds = plan_lake(
                planner, candidates, query, postings
            )

        stats = probe_plan.stats()
        touched = stats["total_candidates"] - stats["skipped_by_postings"]
        assert result_bytes(planner.execute(probe_plan, query)) == result_bytes(
            planner.execute(scan_plan, query)
        ), f"{label}: probed results differ from the full candidate scan"
        lakes[label] = {
            "candidates": num_candidates,
            "postings_build_seconds": build_seconds,
            "scan_plan_seconds": scan_seconds,
            "probe_plan_seconds": probe_seconds,
            "plan_speedup": scan_seconds / probe_seconds,
            "postings_probed": stats["postings_probed"],
            "skipped_by_postings": stats["skipped_by_postings"],
            "touched": touched,
            "touched_fraction": touched / num_candidates,
            "survivors": stats["survivors"],
        }

    touched_growth = lakes["large"]["touched"] / max(lakes["small"]["touched"], 1)
    report = {
        "benchmark": "postings",
        "capacity": CAPACITY,
        "matching_candidates": NUM_MATCHING,
        "small": lakes["small"],
        "large": lakes["large"],
        "touched_fraction": lakes["large"]["touched_fraction"],
        "plan_speedup": lakes["large"]["plan_speedup"],
        "touched_growth": touched_growth,
        "lake_growth": LARGE_LAKE / SMALL_LAKE,
        "identical_results": True,
    }
    path = results_dir / "postings.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert report["touched_fraction"] <= MAX_TOUCHED_FRACTION, (
        f"posting probe touched {report['touched_fraction']:.1%} of the "
        f"{LARGE_LAKE}-column lake (required: <= {MAX_TOUCHED_FRACTION:.0%})"
    )
    assert touched_growth <= MAX_TOUCHED_GROWTH, (
        f"touched candidates grew {touched_growth:.2f}x when the lake grew "
        f"{LARGE_LAKE / SMALL_LAKE:.0f}x — candidate generation is not "
        f"sublinear in the lake size"
    )
    assert report["plan_speedup"] >= MIN_PLAN_SPEEDUP, (
        f"probed planning is only {report['plan_speedup']:.1f}x faster than "
        f"the full scan (required: {MIN_PLAN_SPEEDUP}x)"
    )
