"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  Each benchmark

* runs the corresponding experiment through ``pytest-benchmark`` (so the cost
  of regenerating the artifact is tracked), and
* prints and persists the resulting rows/series under
  ``benchmarks/results/<experiment>.txt`` so the reproduction can be compared
  with the paper side by side (see EXPERIMENTS.md).

Scale parameters are chosen so the full harness completes on a laptop in
minutes; they can be raised for tighter estimates.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark reports are persisted."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_report(results_dir):
    """Return a callback that prints a report and persists it to disk."""

    def _record(name: str, report: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(report + "\n", encoding="utf-8")
        print()
        print(report)
        print(f"[report saved to {os.path.relpath(path)}]")

    return _record
