#!/usr/bin/env python
"""CI accuracy-regression gate for the scenario suite.

The accuracy sibling of :mod:`regression_gate`: compares a fresh
``scenario_accuracy.json`` report (produced by ``repro eval scenarios
--json ...``) against the committed baseline in
``benchmarks/results/baselines/`` and exits non-zero on a statistically
significant accuracy regression.  Stdlib-only, like the perf gate.

Where the perf gate compares scalar throughputs with a bare tolerance,
accuracy metrics carry sampling noise, so this gate layers a z-test on
top of the shared :class:`regression_gate.MetricSpec` tolerance check: a
per-cell metric fails only when it moved beyond the relative tolerance
*and* the move exceeds ``Z_THRESHOLD`` combined standard errors (both
runs' SEs are stored in the report).  Hard flags (``behavior_correct``,
ranking quality) keep zero-noise semantics.

The gate refuses to compare reports whose ``run.run_id`` differ — a
changed suite configuration (families, methods, capacities, sizes or
seed) needs a deliberate baseline refresh, not a silent pass::

    python benchmarks/accuracy_gate.py                   # compare
    python benchmarks/accuracy_gate.py --update-baseline # refresh

Exit codes: 0 within tolerance, 1 regression or missing report/baseline
metric, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import shutil
import sys
from pathlib import Path
from typing import Any, Optional

_HERE = Path(__file__).parent


def _load_regression_gate():
    """Import the sibling perf gate by path (benchmarks/ is not a package)."""
    if "regression_gate" in sys.modules:
        return sys.modules["regression_gate"]
    spec = importlib.util.spec_from_file_location(
        "regression_gate", _HERE / "regression_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["regression_gate"] = module
    spec.loader.exec_module(module)
    return module


_gate = _load_regression_gate()
MetricSpec = _gate.MetricSpec
extract_metric = _gate.extract_metric
load_report = _gate.load_report

REPORT_NAME = "scenario_accuracy.json"

#: Relative tolerance for noisy per-cell accuracy metrics.
ACCURACY_TOLERANCE = 0.25

#: Combined-SE multiples a tolerance breach must additionally exceed.
Z_THRESHOLD = 3.0

#: Ranking quality may drop at most this much absolutely.
RANKING_DROP = 0.15

#: Per-cell metrics gated with the statistical (tolerance + z-test) check;
#: values name the companion standard-error field.
CELL_METRICS: dict[str, str] = {"rmse": "rmse_se", "bias": "bias_se"}


def _significant(
    current: float, baseline: float, current_se: float, baseline_se: float
) -> bool:
    """Whether a metric delta exceeds ``Z_THRESHOLD`` combined SEs."""
    combined = (current_se**2 + baseline_se**2) ** 0.5
    if combined <= 0.0:
        return True  # no recorded noise: any tolerance breach is real
    return abs(current - baseline) > Z_THRESHOLD * combined


def _check_cell_metric(
    cell_key: str,
    metric: str,
    se_field: str,
    current: dict[str, Any],
    baseline: dict[str, Any],
) -> tuple[Optional[str], str]:
    """Gate one noisy cell metric; returns (failure or None, summary line)."""
    current_value = abs(float(current[metric]))
    baseline_value = abs(float(baseline[metric]))
    current_se = float(current.get(se_field) or 0.0)
    baseline_se = float(baseline.get(se_field) or 0.0)
    # Reuse the shared tolerance check: accuracy error is lower-is-better.
    spec = MetricSpec(f"{cell_key}.{metric}", "lower", ACCURACY_TOLERANCE)
    # Tiny baselines make relative tolerance meaningless; the z-test alone
    # decides there (MetricSpec already skips baseline <= 0).
    message = spec.check(current_value, max(baseline_value, 1e-9))
    failed = message is not None and _significant(
        current_value, baseline_value, current_se, baseline_se
    )
    status = "REGRESSION" if failed else ("noise" if message else "ok")
    summary = (
        f"{cell_key} :: {metric}: {current_value:.4g} "
        f"(baseline {baseline_value:.4g} ± {baseline_se:.2g}) {status}"
    )
    return (f"{cell_key}: {message}" if failed else None), summary


def compare_accuracy(
    current: dict[str, Any], baseline: dict[str, Any]
) -> tuple[list[str], list[str]]:
    """Gate a fresh accuracy report against the baseline document."""
    failures: list[str] = []
    summary: list[str] = []

    current_id = current.get("run", {}).get("run_id")
    baseline_id = baseline.get("run", {}).get("run_id")
    if current_id != baseline_id:
        return [
            f"run_id mismatch: current {current_id!r} vs baseline {baseline_id!r} "
            "— the suite configuration changed; rerun with the baseline's "
            "parameters or refresh the baseline deliberately "
            "(--update-baseline)"
        ], summary

    baseline_cells = baseline.get("cells", {})
    current_cells = current.get("cells", {})
    for cell_key, baseline_cell in baseline_cells.items():
        current_cell = current_cells.get(cell_key)
        if current_cell is None:
            failures.append(f"{cell_key}: cell missing from current report")
            continue
        for metric, se_field in CELL_METRICS.items():
            failure, line = _check_cell_metric(
                cell_key, metric, se_field, current_cell, baseline_cell
            )
            summary.append(line)
            if failure:
                failures.append(failure)
        # Hard flag: refusal behavior is deterministic given the run_id, so
        # any drop is a real behavior change, not noise.
        spec = MetricSpec(f"{cell_key}.behavior_correct", "higher", 0.0)
        message = spec.check(
            float(current_cell["behavior_correct"]),
            float(baseline_cell["behavior_correct"]),
        )
        summary.append(
            f"{cell_key} :: behavior_correct: "
            f"{current_cell['behavior_correct']:.4g} "
            f"{'REGRESSION' if message else 'ok'}"
        )
        if message:
            failures.append(f"{cell_key}: {message}")

    for grid_key, baseline_rank in baseline.get("ranking", {}).items():
        current_rank = current.get("ranking", {}).get(grid_key)
        if current_rank is None:
            failures.append(f"ranking {grid_key}: missing from current report")
            continue
        for metric in ("spearman", "top_k_overlap"):
            baseline_value = baseline_rank.get(metric)
            current_value = current_rank.get(metric)
            if baseline_value is None:
                continue
            if current_value is None:
                failures.append(f"ranking {grid_key}: {metric} became unavailable")
                continue
            floor = float(baseline_value) - RANKING_DROP
            failed = float(current_value) < floor
            summary.append(
                f"ranking {grid_key} :: {metric}: {current_value:.4g} "
                f"(baseline {baseline_value:.4g}, floor {floor:.4g}) "
                f"{'REGRESSION' if failed else 'ok'}"
            )
            if failed:
                failures.append(
                    f"ranking {grid_key}: {metric} {current_value:.4g} fell "
                    f"below {floor:.4g} (baseline {baseline_value:.4g})"
                )
    return failures, summary


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=_HERE / "results",
        type=Path,
        help="directory holding the fresh scenario_accuracy.json",
    )
    parser.add_argument(
        "--baselines-dir",
        default=None,
        type=Path,
        help="directory holding committed baselines (default: <results>/baselines)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy the current report over the baseline instead of comparing",
    )
    args = parser.parse_args(argv)
    results_dir = args.results_dir
    baselines_dir = (
        args.baselines_dir if args.baselines_dir is not None else results_dir / "baselines"
    )
    result_path = results_dir / REPORT_NAME
    baseline_path = baselines_dir / REPORT_NAME

    if args.update_baseline:
        if not result_path.exists():
            print(f"no result to promote at {result_path}", file=sys.stderr)
            return 1
        baselines_dir.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(result_path, baseline_path)
        print(f"baseline updated: {baseline_path}")
        return 0

    if not result_path.exists():
        print(f"FAIL: no accuracy report at {result_path}", file=sys.stderr)
        return 1
    if not baseline_path.exists():
        print(f"FAIL: no committed baseline at {baseline_path}", file=sys.stderr)
        return 1
    try:
        current = load_report(result_path)
        baseline = load_report(baseline_path)
    except ValueError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    failures, summary = compare_accuracy(current, baseline)
    for line in summary:
        print(line)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as handle:
            handle.write("## Scenario accuracy gate\n\n```\n")
            handle.write("\n".join(summary + failures) + "\n```\n")
    if failures:
        print()
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print("accuracy gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
