"""Benchmark — sharded parallel index build vs the serial add_table loop.

Index construction is the offline half of the pipeline and dominates the
cost of onboarding a data lake.  This benchmark builds a 500-column
synthetic lake (25 tables x 20 value columns) twice:

* **serial** — the compatibility path: ``SketchIndex.add_table`` per table,
  one candidate at a time, recomputing the key-side work per column;
* **sharded** — the production path: :class:`~repro.discovery.builder.
  IndexBuilder` with 4 worker processes over 8 shards, sharing the
  key-side work per (table, key) column family.

It asserts the sharded build is at least 2x faster (best-of-3 sharded
timing, skipped below 4 cores where the ratio would measure runner
contention), that every candidate (sketch tuples, KMV sketch, profile) is
identical between the two builds, and that top-k query results from the
two indexes match exactly.  The JSON report feeds the CI
benchmark-regression gate.

Both arms pin ``vectorized=False`` so this benchmark isolates the *sharding*
machinery (shard scheduling, worker processes, merge) from the orthogonal
vectorized-hashing fast path, which has its own gated benchmark
(``test_bench_hashing.py``).  With vectorized hashing on, per-candidate
compute at this fixture scale drops below the cost of shipping tables to
worker processes, so the parallel-over-serial ratio would measure IPC, not
the scheduler.  (Production defaults — vectorized *and* sharded — remain
the fastest overall configuration.)
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.discovery import SketchIndex
from repro.engine import EngineConfig, SketchEngine
from repro.evaluation.runner import build_lake_index
from repro.relational.table import Table

NUM_TABLES = 25
COLUMNS_PER_TABLE = 20
ROWS_PER_TABLE = 400
NUM_KEYS = 300
CAPACITY = 128
MAX_WORKERS = 4
NUM_SHARDS = 8
MIN_SPEEDUP = 2.0


def build_lake(seed: int = 11):
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    target = rng.normal(size=NUM_KEYS)
    base = Table.from_dict(
        {"key": keys, "target": target.tolist()}, name="base"
    )
    tables = []
    for position in range(NUM_TABLES):
        row_keys = [keys[i] for i in rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)]
        data: dict = {"key": row_keys}
        for column in range(COLUMNS_PER_TABLE):
            mix = rng.uniform(0.0, 1.0)
            signal = np.array([target[int(key[1:])] for key in row_keys])
            data[f"v{column:02d}"] = (
                (1.0 - mix) * signal + mix * rng.normal(size=ROWS_PER_TABLE)
            ).tolist()
        tables.append(Table.from_dict(data, name=f"lake{position:03d}"))
    return base, tables


def test_bench_index_build(benchmark, results_dir):
    config = EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0, vectorized=False)
    base, tables = build_lake()
    total_columns = NUM_TABLES * COLUMNS_PER_TABLE

    serial_index = SketchIndex(SketchEngine(config))
    start = time.perf_counter()
    for table in tables:
        serial_index.add_table(table, ["key"])
    serial_seconds = time.perf_counter() - start

    def sharded_build():
        # Best-of-3: a transient stall on a loaded runner inflates a single
        # sharded timing and fails the speedup gate spuriously; the minimum
        # is the scheduler's real cost.  (Serial noise only *inflates* the
        # measured speedup, so one serial pass is safe.)
        best_seconds = None
        best_index = None
        for _ in range(3):
            start = time.perf_counter()
            index = build_lake_index(
                tables,
                ["key"],
                engine=config,
                num_shards=NUM_SHARDS,
                max_workers=MAX_WORKERS,
            )
            elapsed = time.perf_counter() - start
            if best_seconds is None or elapsed < best_seconds:
                best_seconds, best_index = elapsed, index
        return best_index, best_seconds

    sharded_index, sharded_seconds = benchmark.pedantic(
        sharded_build, rounds=1, iterations=1
    )

    # The sharded build must be a pure speedup: same candidates, same
    # sketches, same order, same answers.
    assert len(serial_index) == len(sharded_index) == total_columns
    assert [candidate.candidate_id for candidate in sharded_index.candidates] == [
        candidate.candidate_id for candidate in serial_index.candidates
    ]
    serial_by_id = {
        candidate.candidate_id: candidate for candidate in serial_index.candidates
    }
    for candidate in sharded_index.candidates:
        reference = serial_by_id[candidate.candidate_id]
        assert candidate.sketch == reference.sketch
        assert candidate.key_kmv.hashes == reference.key_kmv.hashes
        assert candidate.profile == reference.profile
        assert candidate.aggregate == reference.aggregate

    serial_results = serial_index.query_columns(
        base, "key", "target", top_k=10, min_join_size=8
    )
    sharded_results = sharded_index.query_columns(
        base, "key", "target", top_k=10, min_join_size=8
    )
    assert [(result.candidate_id, result.mi_estimate) for result in serial_results] == [
        (result.candidate_id, result.mi_estimate) for result in sharded_results
    ]

    speedup = serial_seconds / sharded_seconds
    report = {
        "benchmark": "index_build",
        "columns": total_columns,
        "tables": NUM_TABLES,
        "rows_per_table": ROWS_PER_TABLE,
        "capacity": CAPACITY,
        "serial": {
            "seconds": serial_seconds,
            "columns_per_second": total_columns / serial_seconds,
        },
        "sharded": {
            "max_workers": MAX_WORKERS,
            "num_shards": NUM_SHARDS,
            "seconds": sharded_seconds,
            "columns_per_second": total_columns / sharded_seconds,
        },
        "speedup": speedup,
        "identical_queries": True,
    }
    path = results_dir / "index_build.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    # The identity checks above always run; the speedup ratio is only
    # meaningful when there are cores for the workers to spread over.  A
    # 2.0x floor with 4 workers needs at least 4 real cores: on a loaded
    # 1-2 core box the theoretical ceiling sits at the floor itself, so
    # the assert would measure runner contention, not the scheduler.
    cpu_count = os.cpu_count() or 1
    if cpu_count < MAX_WORKERS:
        pytest.skip(
            f"parallel-over-serial speedup of {MIN_SPEEDUP}x needs >= "
            f"{MAX_WORKERS} cores to be meaningful; this runner has "
            f"{cpu_count} (report still written)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded build at {MAX_WORKERS} workers is only {speedup:.2f}x faster "
        f"than the serial path (required: {MIN_SPEEDUP}x)"
    )
