"""Benchmark E4 — Figure 4: effect of distinct values, Trinomial, TUPSK, n=256.

Paper shape: the bias of estimators that treat the data as discrete (MLE
first, Mixed-KSG to a lesser extent) grows with m; at m = 1024 the MLE
estimates are compressed into a narrow high range regardless of the true MI.
"""

from repro.evaluation.experiments import run_figure4


def test_bench_figure4(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_figure4(
            m_values=(16, 64, 256, 512, 1024),
            sketch_size=256,
            sample_size=10_000,
            datasets_per_m=5,
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report("figure4", result.report())

    mle_bias = {row["m"]: row["bias"] for row in result.summary if row["estimator"] == "MLE"}
    assert mle_bias[1024] > mle_bias[16]
    assert mle_bias[1024] > 0.25
