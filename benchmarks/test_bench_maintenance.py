"""Benchmark — maintained serving under live registration churn.

A process-mode service over a maintained index directory must keep
answering while tables are registered live: every registration is durably
appended to the write-ahead log, folded into a new published generation by
the background compactor, and picked up by each worker through an in-place
re-mmap (see docs/durability.md). This benchmark drives a continuous query
load through several live registrations and reports:

* **success_fraction** — the fraction of churn-phase queries answered
  without error. Gated as a hard flag: generation reloads must never fail
  a query.
* **generations_published** — bootstrap plus one generation per
  registration, a deterministic count; any drift is a real behavior
  change.
* **reload_p50_ratio** — churn-phase p50 latency over quiet-phase p50, a
  same-process ratio that cancels out runner speed. Reloading mid-stream
  is allowed to cost something, but not to wreck latency.

Runs on any core count: the assertions are about correctness under churn,
not scaling (contrast benchmarks/test_bench_mp_serving.py). The JSON
report feeds the CI benchmark-regression gate.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time

import numpy as np

from repro.discovery import SketchIndex, save_index
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.maintenance import WriteAheadLog
from repro.relational.table import Table
from repro.serving import DiscoveryService, ServiceConfig

CPU_COUNT = os.cpu_count() or 1

NUM_TABLES = 5
COLUMNS_PER_TABLE = 3
ROWS_PER_TABLE = 240
NUM_KEYS = 240
CAPACITY = 64
WORKERS = 2
REGISTRATIONS = 3
QUIET_QUERIES = 12
TARGET_POOL = 8


def build_lake(seed: int = 41):
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    signal = rng.normal(size=NUM_KEYS)
    base_columns: dict = {"key": keys}
    for position in range(TARGET_POOL):
        mix = rng.uniform(0.2, 0.8)
        base_columns[f"t{position:02d}"] = (
            (1.0 - mix) * signal + mix * rng.normal(size=NUM_KEYS)
        ).tolist()
    base = Table.from_dict(base_columns, name="base")

    def lake_table(name, table_seed):
        table_rng = np.random.default_rng(table_seed)
        row_keys = [
            keys[i] for i in table_rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)
        ]
        aligned = np.array([signal[int(key[1:])] for key in row_keys])
        data: dict = {"key": row_keys}
        for column in range(COLUMNS_PER_TABLE):
            mix = table_rng.uniform(0.0, 1.0)
            data[f"v{column:02d}"] = (
                (1.0 - mix) * aligned + mix * table_rng.normal(size=ROWS_PER_TABLE)
            ).tolist()
        return Table.from_dict(data, name=name)

    tables = [lake_table(f"lake{position:03d}", 100 + position) for position in range(NUM_TABLES)]
    fresh = [lake_table(f"fresh{position:03d}", 500 + position) for position in range(REGISTRATIONS)]
    return base, tables, fresh


def make_query(base, target):
    return AugmentationQuery(
        table=base,
        key_column="key",
        target_column=target,
        top_k=30,
        min_containment=0.0,
        min_join_size=8,
    )


def test_bench_maintenance(benchmark, results_dir, tmp_path):
    config = EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0)
    base, tables, fresh = build_lake()

    index = SketchIndex(SketchEngine(config))
    for table in tables:
        index.add_table(table, ["key"])
    index_dir = tmp_path / "lake.index"
    save_index(index, index_dir)
    WriteAheadLog.attach(index_dir, create=True).close()

    # Every cache off: each query must pay the full dispatch so reloads are
    # actually exercised instead of answered from a stale cache entry.
    service = DiscoveryService(
        index_dir,
        ServiceConfig(
            execution="process",
            workers=WORKERS,
            cache_entries=0,
            shared_cache_entries=0,
        ),
    )
    try:
        service.start_maintenance()  # bootstraps generation 1 synchronously
        assert service.published_generation() == 1
        service.start_workers()

        # -- quiet phase: steady-state latency, no maintenance churn ------ #
        quiet_latencies = []
        for position in range(QUIET_QUERIES):
            query = make_query(base, f"t{position % TARGET_POOL:02d}")
            started = time.perf_counter()
            service.query(query)
            quiet_latencies.append(time.perf_counter() - started)

        # -- churn phase: continuous load across live registrations ------- #
        stop = threading.Event()
        latencies: list[float] = []
        failures: list[BaseException] = []

        def client() -> None:
            position = 0
            while not stop.is_set():
                query = make_query(base, f"t{position % TARGET_POOL:02d}")
                position += 1
                started = time.perf_counter()
                try:
                    service.query(query)
                except BaseException as exc:  # noqa: BLE001 - counted, reported
                    failures.append(exc)
                else:
                    latencies.append(time.perf_counter() - started)

        def churn() -> float:
            thread = threading.Thread(target=client, name="churn-client")
            started = time.perf_counter()
            thread.start()
            try:
                for position, table in enumerate(fresh):
                    service.register_table(table, ["key"])
                    deadline = time.time() + 300.0
                    while time.time() < deadline:
                        if (service.published_generation() or 0) >= 2 + position:
                            break
                        time.sleep(0.02)
                # Observe the final generation from the query path before
                # stopping: the last answers must come from a reloaded view.
                served = service.query(make_query(base, "t00")).results
                names = {result.table_name for result in served}
                assert {table.name for table in fresh} <= names, names
            finally:
                stop.set()
                thread.join(timeout=120)
            return time.perf_counter() - started

        churn_seconds = benchmark.pedantic(churn, rounds=1, iterations=1)
        stats = service.stats()
    finally:
        service.close()

    generations = stats["maintenance"]["generation"]
    reloads = stats["worker_pool"]["worker_reloads"]
    total = len(latencies) + len(failures)
    success_fraction = (len(latencies) / total) if total else 0.0
    quiet_p50 = statistics.median(quiet_latencies)
    churn_p50 = statistics.median(latencies) if latencies else float("inf")

    report = {
        "benchmark": "maintenance",
        "cpu_count": CPU_COUNT,
        "workers": WORKERS,
        "registrations": REGISTRATIONS,
        "candidates": NUM_TABLES * COLUMNS_PER_TABLE,
        "quiet": {
            "queries": len(quiet_latencies),
            "p50_ms": quiet_p50 * 1000.0,
        },
        "churn": {
            "queries": total,
            "failed": len(failures),
            "seconds": churn_seconds,
            "p50_ms": churn_p50 * 1000.0,
        },
        "generations_published": generations,
        "worker_reloads": reloads,
        "pending_deltas": stats["maintenance"]["pending_deltas"],
        "success_fraction": success_fraction,
        "reload_p50_ratio": churn_p50 / quiet_p50,
    }
    path = results_dir / "maintenance.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert not failures, f"{len(failures)} queries failed across reloads: {failures[:3]}"
    assert generations == 1 + REGISTRATIONS
    assert reloads >= 1, "no worker ever re-mmapped a published generation"
    assert stats["maintenance"]["pending_deltas"] == 0
