"""Benchmark — engine batch estimation: sequential vs thread-pooled.

The online half of the pipeline is a batch workload: one base sketch is
estimated against every indexed candidate.  This benchmark times
``SketchEngine.estimate_many`` over 200+ candidate pairs sequentially and
with ``max_workers > 1``, records the throughput of both paths, and checks
the concurrent path returns bit-identical estimates in the same order.

Pure-Python MI estimation holds the GIL, so the thread pool is about
overlap-tolerance, not CPU speedup; the numbers quantify the dispatch
overhead that a free-threaded / native estimator build would recoup.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.engine import EngineConfig, SketchEngine
from repro.relational.table import Table

NUM_PAIRS = 200
NUM_KEYS = 300
MAX_WORKERS = 4


def build_workload(num_pairs: int = NUM_PAIRS, num_keys: int = NUM_KEYS, seed: int = 13):
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(num_keys)]
    target = rng.normal(size=num_keys)
    base = Table.from_dict({"key": keys, "target": target.tolist()}, name="base")
    candidates = []
    for index in range(num_pairs):
        mix = rng.uniform(0.0, 1.0)
        feature = (1.0 - mix) * target + mix * rng.normal(size=num_keys)
        candidates.append(
            Table.from_dict(
                {"key": keys, "feature": feature.tolist()}, name=f"cand{index:04d}"
            )
        )
    return base, candidates


def test_bench_engine_batch(benchmark, results_dir):
    engine = SketchEngine(EngineConfig(method="TUPSK", capacity=128, seed=0))
    base, candidates = build_workload()
    base_sketch = engine.sketch_base(base, "key", "target")
    candidate_sketches = engine.sketch_pairs(
        [(candidate, "key", "feature", "candidate") for candidate in candidates],
    )

    def run(max_workers):
        start = time.perf_counter()
        outcomes = engine.estimate_many(
            base_sketch,
            candidate_sketches,
            min_join_size=8,
            max_workers=max_workers,
            return_exceptions=True,
        )
        elapsed = time.perf_counter() - start
        return outcomes, elapsed

    sequential, sequential_seconds = run(None)
    concurrent, concurrent_seconds = benchmark.pedantic(
        lambda: run(MAX_WORKERS), rounds=1, iterations=1
    )

    # Concurrency must not change a single estimate or the ranking.
    assert len(sequential) == len(concurrent) == NUM_PAIRS
    for left, right in zip(sequential, concurrent):
        assert left.ok == right.ok
        if left.ok:
            assert left.estimate.mi == right.estimate.mi
            assert left.estimate.estimator == right.estimate.estimator

    report = {
        "benchmark": "engine_batch",
        "num_pairs": NUM_PAIRS,
        "num_keys": NUM_KEYS,
        "capacity": engine.config.capacity,
        "estimated": sum(1 for outcome in sequential if outcome.ok),
        "sequential": {
            "seconds": sequential_seconds,
            "pairs_per_second": NUM_PAIRS / sequential_seconds,
        },
        "concurrent": {
            "max_workers": MAX_WORKERS,
            "seconds": concurrent_seconds,
            "pairs_per_second": NUM_PAIRS / concurrent_seconds,
        },
        "speedup": sequential_seconds / concurrent_seconds,
    }
    path = results_dir / "engine_batch.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert report["sequential"]["pairs_per_second"] > 0
    assert report["concurrent"]["pairs_per_second"] > 0
