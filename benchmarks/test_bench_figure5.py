"""Benchmark E7 — Figure 5: effect of the sketch-join size on real data.

Paper shape: sketch estimates scatter widely against full-join estimates when
the sketch join is small (MLE over-estimates, KSG-family estimators collapse
toward zero) and tighten around the diagonal as the minimum join size grows.
"""

from repro.evaluation.experiments import run_figure5


def test_bench_figure5(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_figure5(
            profile="wbf",
            method="TUPSK",
            sketch_size=1024,
            num_pairs=60,
            tables_per_repository=40,
            thresholds=(128, 256, 512, 768),
            random_state=42,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(
        "figure5",
        result.report(
            columns=["join_size_gt", "estimator", "pairs", "bias", "mse", "avg_join_size"]
        ),
    )

    assert result.rows, "expected at least some surviving pairs"
    # MSE at the largest threshold never exceeds the MSE at the smallest one
    # (per estimator), i.e. accuracy improves with the sketch-join size.
    by_estimator = {}
    for row in result.summary:
        by_estimator.setdefault(row["estimator"], {})[row["join_size_gt"]] = row["mse"]
    for estimator, series in by_estimator.items():
        thresholds = sorted(series)
        if len(thresholds) >= 2:
            assert series[thresholds[-1]] <= series[thresholds[0]] + 1e-6, estimator
