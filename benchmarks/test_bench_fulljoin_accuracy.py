"""Benchmark E1 — full-join estimator accuracy (Section V-B1).

Paper reference values: RMSE < 0.07 and Pearson's correlation > 0.99 between
full-join estimates and the analytic MI, for every estimator, at N = 10k.
"""

from repro.evaluation.experiments import run_fulljoin_accuracy


def test_bench_fulljoin_accuracy(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fulljoin_accuracy(
            datasets_per_distribution=6, sample_size=10_000, random_state=42
        ),
        rounds=1,
        iterations=1,
    )
    record_report("fulljoin_accuracy", result.report())
    for row in result.summary:
        assert row["pearson"] > 0.95
        assert row["rmse"] < 0.3
