"""Benchmark — process-worker serving throughput vs the thread pool.

``benchmarks/results/baselines/engine_batch.json`` records the thread
pool's ceiling: concurrent in-process estimation runs at **0.85x**
sequential, because MI estimation holds the GIL.  Process execution
(`ServiceConfig(execution="process")`) exists to break that ceiling — N
spawned workers memory-map the same index directory and estimate truly in
parallel — and this benchmark proves it:

* **scaling** — a closed loop of clients firing *unique* queries (every
  caching and coalescing layer disabled/defeated) must reach >= 1.5x the
  thread pool's qps on a multi-core runner;
* **byte-identity** — process-mode answers serialize byte-identically to
  thread-mode answers for the same queries.

The whole module skips on single-core runners: there is nothing to scale
with, and the 1.5x assertion would be vacuous noise.  The JSON report
feeds the CI benchmark-regression gate.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.discovery import SketchIndex, save_index
from repro.discovery.query import AugmentationQuery
from repro.engine import EngineConfig, SketchEngine
from repro.relational.table import Table
from repro.serving import DiscoveryService, ServiceConfig, result_to_dict

CPU_COUNT = os.cpu_count() or 1

pytestmark = pytest.mark.skipif(
    CPU_COUNT < 2,
    reason=(
        "process-vs-thread qps scaling needs >= 2 cores to mean anything; "
        f"this runner has {CPU_COUNT}"
    ),
)

NUM_TABLES = 10
COLUMNS_PER_TABLE = 10
ROWS_PER_TABLE = 300
NUM_KEYS = 300
CAPACITY = 64
CLIENTS = min(4, CPU_COUNT)
QUERIES_PER_CLIENT = 5
IDENTITY_QUERIES = 4
MIN_SCALING = 1.5


def build_lake(seed: int = 29):
    """A base table with one unique target column per timed query."""
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(NUM_KEYS)]
    signal = rng.normal(size=NUM_KEYS)
    base_columns: dict = {"key": keys}
    for position in range(CLIENTS * QUERIES_PER_CLIENT):
        mix = rng.uniform(0.2, 0.8)
        base_columns[f"t{position:02d}"] = (
            (1.0 - mix) * signal + mix * rng.normal(size=NUM_KEYS)
        ).tolist()
    base = Table.from_dict(base_columns, name="base")
    tables = []
    for position in range(NUM_TABLES):
        row_keys = [keys[i] for i in rng.integers(0, NUM_KEYS, size=ROWS_PER_TABLE)]
        data: dict = {"key": row_keys}
        aligned = np.array([signal[int(key[1:])] for key in row_keys])
        for column in range(COLUMNS_PER_TABLE):
            mix = rng.uniform(0.0, 1.0)
            data[f"v{column:02d}"] = (
                (1.0 - mix) * aligned + mix * rng.normal(size=ROWS_PER_TABLE)
            ).tolist()
        tables.append(Table.from_dict(data, name=f"lake{position:03d}"))
    return base, tables


def make_query(base, target):
    return AugmentationQuery(
        table=base,
        key_column="key",
        target_column=target,
        top_k=10,
        min_containment=0.0,
        min_join_size=8,
    )


def make_service(index_dir, execution):
    # Every cache off: L1 in the parent, the workers' L1s and the shared
    # cache would all turn repeat queries into no-ops and measure nothing.
    # The timed queries are additionally all *unique*, so coalescing cannot
    # collapse them either — each one pays the full planning + estimation.
    return DiscoveryService(
        index_dir,
        ServiceConfig(
            workers=CLIENTS,
            execution=execution,
            cache_entries=0,
            shared_cache_entries=0,
        ),
    )


def closed_loop(service, base, targets):
    """Fire every target once across CLIENTS concurrent clients."""
    import threading

    per_client = len(targets) // CLIENTS
    barrier = threading.Barrier(CLIENTS + 1)
    errors = []

    def client(position):
        try:
            barrier.wait()
            for i in range(per_client):
                service.query(make_query(base, targets[position * per_client + i]))
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(position,))
        for position in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


def test_bench_mp_serving(benchmark, results_dir, tmp_path):
    config = EngineConfig(method="TUPSK", capacity=CAPACITY, seed=0)
    base, tables = build_lake()

    index = SketchIndex(SketchEngine(config))
    for table in tables:
        index.add_table(table, ["key"])
    index_dir = tmp_path / "lake.index"
    save_index(index, index_dir)

    targets = [f"t{position:02d}" for position in range(CLIENTS * QUERIES_PER_CLIENT)]
    total_queries = len(targets)

    # -- byte-identity: process answers == thread answers ---------------- #
    identity_targets = targets[:IDENTITY_QUERIES]
    with make_service(index_dir, "thread") as threaded:
        expected = {
            target: json.dumps(
                [
                    result_to_dict(result)
                    for result in threaded.query(make_query(base, target)).results
                ],
                sort_keys=True,
            )
            for target in identity_targets
        }

        # -- thread-mode closed loop (the GIL-bound reference) ------------ #
        thread_seconds = closed_loop(threaded, base, targets)

    process_service = make_service(index_dir, "process")
    try:
        pool = process_service.start_workers()  # pay spawn + mmap up front
        identical = all(
            json.dumps(
                [
                    result_to_dict(result)
                    for result in process_service.query(make_query(base, target)).results
                ],
                sort_keys=True,
            )
            == expected[target]
            for target in identity_targets
        )

        # -- process-mode closed loop over the warm pool ------------------ #
        process_seconds = benchmark.pedantic(
            closed_loop,
            args=(process_service, base, targets),
            rounds=1,
            iterations=1,
        )
        pool_stats = pool.stats()
    finally:
        process_service.close()

    thread_qps = total_queries / thread_seconds
    process_qps = total_queries / process_seconds
    scaling_ratio = process_qps / thread_qps

    report = {
        "benchmark": "mp_serving",
        "candidates": NUM_TABLES * COLUMNS_PER_TABLE,
        "capacity": CAPACITY,
        "cpu_count": CPU_COUNT,
        "workers": CLIENTS,
        "clients": CLIENTS,
        "thread": {
            "queries": total_queries,
            "seconds": thread_seconds,
            "qps": thread_qps,
        },
        "process": {
            "queries": total_queries,
            "seconds": process_seconds,
            "qps": process_qps,
            "worker_restarts": pool_stats["worker_restarts"],
        },
        "scaling_ratio": scaling_ratio,
        "identical_results": 1.0 if identical else 0.0,
    }
    path = results_dir / "mp_serving.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))
    print(f"[report saved to {path}]")

    assert identical, "process-mode answers differ from the thread path"
    assert scaling_ratio >= MIN_SCALING, (
        f"process execution is only {scaling_ratio:.2f}x the thread pool's "
        f"qps on {CPU_COUNT} cores (required: {MIN_SCALING}x)"
    )
