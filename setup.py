"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can also be installed in environments where PEP 660 editable installs
are unavailable (e.g. no ``wheel`` package and no network access), via
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
